//! Assembly: flattened netlist + variable assignment + model library →
//! a value-resolved [`SizedCircuit`] ready for numerical analysis.

use crate::elements::{LinElement, Node};
use crate::nodemap::NodeMap;
use oblx_devices::{BjtModel, DiodeModel, ModelError, ModelLibrary, MosModel};
use oblx_netlist::{ElementKind, EvalError, Netlist, ParseError};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// A MOS device instance bound to its evaluator and node indices.
///
/// When the model declares extrinsic `rd`/`rs`, internal drain/source
/// nodes (`<name>#d`, `<name>#s`) are inserted during assembly and the
/// channel connects to those; the series resistors appear among the
/// linear elements. This is the "device template" of the paper — the
/// internal nodes become extra relaxed-dc variables.
#[derive(Debug, Clone)]
pub struct MosInstance {
    /// Flattened instance name, e.g. `xamp.m1`.
    pub name: String,
    /// The encapsulated evaluator.
    pub model: MosModel,
    /// Channel drain node (internal node when `rd > 0`).
    pub d: Node,
    /// Gate node.
    pub g: Node,
    /// Channel source node (internal node when `rs > 0`).
    pub s: Node,
    /// Bulk node.
    pub b: Node,
    /// Gate width (m).
    pub w: f64,
    /// Gate length (m).
    pub l: f64,
}

/// A junction-diode instance.
#[derive(Debug, Clone)]
pub struct DiodeInstance {
    /// Flattened instance name.
    pub name: String,
    /// The encapsulated evaluator.
    pub model: DiodeModel,
    /// Anode node.
    pub a: Node,
    /// Cathode node.
    pub k: Node,
    /// Area multiplier.
    pub area: f64,
}

/// A bipolar device instance.
#[derive(Debug, Clone)]
pub struct BjtInstance {
    /// Flattened instance name.
    pub name: String,
    /// The encapsulated evaluator.
    pub model: BjtModel,
    /// Collector node.
    pub c: Node,
    /// Base node.
    pub b: Node,
    /// Emitter node.
    pub e: Node,
    /// Emitter-area multiplier.
    pub area: f64,
}

/// Error assembling a circuit.
#[derive(Debug)]
pub enum BuildError {
    /// An element value expression failed to evaluate.
    Eval {
        /// Element name.
        element: String,
        /// Underlying evaluation error.
        source: EvalError,
    },
    /// A device referenced a missing or wrong-family model.
    Model(ModelError),
    /// The netlist still contains unflattened instances.
    NotFlat(String),
    /// A geometry or element value is out of physical range.
    BadValue {
        /// Element name.
        element: String,
        /// Description.
        what: String,
    },
    /// Netlist-level error (propagated from flattening helpers).
    Netlist(ParseError),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::Eval { element, source } => {
                write!(f, "element `{element}`: {source}")
            }
            BuildError::Model(e) => write!(f, "{e}"),
            BuildError::NotFlat(n) => {
                write!(f, "instance `{n}` not flattened before assembly")
            }
            BuildError::BadValue { element, what } => {
                write!(f, "element `{element}`: {what}")
            }
            BuildError::Netlist(e) => write!(f, "{e}"),
        }
    }
}

impl Error for BuildError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BuildError::Eval { source, .. } => Some(source),
            BuildError::Model(e) => Some(e),
            BuildError::Netlist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for BuildError {
    fn from(e: ModelError) -> Self {
        BuildError::Model(e)
    }
}

impl From<ParseError> for BuildError {
    fn from(e: ParseError) -> Self {
        BuildError::Netlist(e)
    }
}

/// A value-resolved circuit: interned nodes, concrete linear elements,
/// and device instances bound to their evaluators.
#[derive(Debug, Clone)]
pub struct SizedCircuit {
    /// Node table.
    pub nodes: NodeMap,
    /// Linear elements.
    pub linear: Vec<LinElement>,
    /// Element names parallel to `linear` (device-template resistors get
    /// `name#rd` / `name#rs` names).
    pub linear_names: Vec<String>,
    /// MOS instances.
    pub mosfets: Vec<MosInstance>,
    /// Bipolar instances.
    pub bjts: Vec<BjtInstance>,
    /// Diode instances.
    pub diodes: Vec<DiodeInstance>,
    /// Number of branch-current unknowns.
    pub branches: usize,
}

impl SizedCircuit {
    /// Total MNA dimension: nodes + branch currents.
    pub fn dim(&self) -> usize {
        self.nodes.len() + self.branches
    }

    /// Number of circuit elements (linear + devices), the paper's
    /// Table 1 "elements" metric.
    pub fn element_count(&self) -> usize {
        self.linear.len() + self.mosfets.len() + self.bjts.len() + self.diodes.len()
    }

    /// Builds a circuit from a **flattened** netlist.
    ///
    /// Design variables referenced by element values are taken from
    /// `vars` (lowercase keys). Device geometry expressions are clamped
    /// to a minimum of 1 nm rather than rejected, because the annealer
    /// must be able to evaluate any proposed configuration.
    ///
    /// # Errors
    ///
    /// [`BuildError`] on unresolved expressions, missing models, or
    /// unflattened instances.
    pub fn build(
        netlist: &Netlist,
        vars: &HashMap<String, f64>,
        lib: &ModelLibrary,
    ) -> Result<Self, BuildError> {
        if let Some(inst) = netlist.instances.first() {
            return Err(BuildError::NotFlat(inst.name.clone()));
        }
        let mut nodes = NodeMap::new();
        let mut linear = Vec::new();
        let mut linear_names: Vec<String> = Vec::new();
        let mut mosfets = Vec::new();
        let mut bjts = Vec::new();
        let mut diodes = Vec::new();
        let mut branches = 0usize;

        let eval = |name: &str, e: &oblx_netlist::Expr| -> Result<f64, BuildError> {
            e.eval_with_vars(vars).map_err(|source| BuildError::Eval {
                element: name.to_string(),
                source,
            })
        };

        for el in &netlist.elements {
            let mut node = |i: usize| -> Node { nodes.intern(&el.nodes[i]) };
            match &el.kind {
                ElementKind::Resistor { value } => {
                    let (p, m) = (node(0), node(1));
                    let r = eval(&el.name, value)?;
                    if r <= 0.0 {
                        return Err(BuildError::BadValue {
                            element: el.name.clone(),
                            what: format!("resistance {r} must be positive"),
                        });
                    }
                    linear.push(LinElement::Resistor { p, m, g: 1.0 / r });
                    linear_names.push(el.name.clone());
                }
                ElementKind::Capacitor { value } => {
                    let (p, m) = (node(0), node(1));
                    let c = eval(&el.name, value)?;
                    if c < 0.0 {
                        return Err(BuildError::BadValue {
                            element: el.name.clone(),
                            what: format!("capacitance {c} must be non-negative"),
                        });
                    }
                    linear.push(LinElement::Capacitor { p, m, c });
                    linear_names.push(el.name.clone());
                }
                ElementKind::Inductor { value } => {
                    let (p, m) = (node(0), node(1));
                    let l = eval(&el.name, value)?;
                    linear.push(LinElement::Inductor {
                        p,
                        m,
                        l,
                        branch: branches,
                    });
                    linear_names.push(el.name.clone());
                    branches += 1;
                }
                ElementKind::Vsource { dc, ac } => {
                    let (p, m) = (node(0), node(1));
                    linear.push(LinElement::Vsource {
                        p,
                        m,
                        dc: eval(&el.name, dc)?,
                        ac: *ac,
                        branch: branches,
                    });
                    linear_names.push(el.name.clone());
                    branches += 1;
                }
                ElementKind::Isource { dc, ac } => {
                    let (p, m) = (node(0), node(1));
                    linear.push(LinElement::Isource {
                        p,
                        m,
                        dc: eval(&el.name, dc)?,
                        ac: *ac,
                    });
                    linear_names.push(el.name.clone());
                }
                ElementKind::Vcvs { cp, cm, gain } => {
                    let (p, m) = (node(0), node(1));
                    let cp = nodes.intern(cp);
                    let cm = nodes.intern(cm);
                    linear.push(LinElement::Vcvs {
                        p,
                        m,
                        cp,
                        cm,
                        gain: eval(&el.name, gain)?,
                        branch: branches,
                    });
                    linear_names.push(el.name.clone());
                    branches += 1;
                }
                ElementKind::Vccs { cp, cm, gm } => {
                    let (p, m) = (node(0), node(1));
                    let cp = nodes.intern(cp);
                    let cm = nodes.intern(cm);
                    linear.push(LinElement::Vccs {
                        p,
                        m,
                        cp,
                        cm,
                        gm: eval(&el.name, gm)?,
                    });
                    linear_names.push(el.name.clone());
                }
                ElementKind::Mosfet { model, w, l } => {
                    let model = lib.mos(model)?.clone();
                    let (d_ext, g, s_ext, b) = (node(0), node(1), node(2), node(3));
                    let w = eval(&el.name, w)?.max(1e-9);
                    let l = eval(&el.name, l)?.max(1e-9);
                    let (rd, rs) = model.series_resistance();
                    // Device template: series resistances insert
                    // internal channel nodes.
                    let d = if rd > 0.0 {
                        let di = nodes.intern(&format!("{}#d", el.name));
                        linear.push(LinElement::Resistor {
                            p: d_ext,
                            m: di,
                            g: 1.0 / rd,
                        });
                        linear_names.push(format!("{}#rd", el.name));
                        di
                    } else {
                        d_ext
                    };
                    let s = if rs > 0.0 {
                        let si = nodes.intern(&format!("{}#s", el.name));
                        linear.push(LinElement::Resistor {
                            p: s_ext,
                            m: si,
                            g: 1.0 / rs,
                        });
                        linear_names.push(format!("{}#rs", el.name));
                        si
                    } else {
                        s_ext
                    };
                    mosfets.push(MosInstance {
                        name: el.name.clone(),
                        model,
                        d,
                        g,
                        s,
                        b,
                        w,
                        l,
                    });
                }
                ElementKind::Bjt { model, area } => {
                    let model = lib.bjt(model)?.clone();
                    let (c, b_ext, e) = (node(0), node(1), node(2));
                    let area = eval(&el.name, area)?.max(1e-3);
                    let rb = model.params().rb;
                    let b = if rb > 0.0 {
                        let bi = nodes.intern(&format!("{}#b", el.name));
                        linear.push(LinElement::Resistor {
                            p: b_ext,
                            m: bi,
                            g: 1.0 / rb,
                        });
                        linear_names.push(format!("{}#rb", el.name));
                        bi
                    } else {
                        b_ext
                    };
                    bjts.push(BjtInstance {
                        name: el.name.clone(),
                        model,
                        c,
                        b,
                        e,
                        area,
                    });
                }
                ElementKind::Diode { model, area } => {
                    let model = lib.diode(model)?.clone();
                    let (a, k) = (node(0), node(1));
                    let area = eval(&el.name, area)?.max(1e-3);
                    diodes.push(DiodeInstance {
                        name: el.name.clone(),
                        model,
                        a,
                        k,
                        area,
                    });
                }
            }
        }

        Ok(SizedCircuit {
            nodes,
            linear,
            linear_names,
            mosfets,
            bjts,
            diodes,
            branches,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oblx_devices::process::ProcessDeck;
    use oblx_netlist::parse_problem;

    fn vars(pairs: &[(&str, f64)]) -> HashMap<String, f64> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn builds_rc_jig() {
        let p =
            parse_problem(".jig j\nv1 in 0 5 ac 1\nr1 in out 1k\nc1 out 0 1p\n.endjig\n").unwrap();
        let lib = ModelLibrary::new();
        let flat = p.jigs[0].netlist.flatten(&p.subckts).unwrap();
        let ckt = SizedCircuit::build(&flat, &HashMap::new(), &lib).unwrap();
        assert_eq!(ckt.nodes.len(), 2);
        assert_eq!(ckt.branches, 1);
        assert_eq!(ckt.dim(), 3);
        assert_eq!(ckt.element_count(), 3);
    }

    #[test]
    fn geometry_from_variables() {
        let p = parse_problem(
            ".model nmos nmos level=1\n.jig j\nm1 d g 0 0 nmos w='W' l='L*2'\n.endjig\n",
        )
        .unwrap();
        let lib = ModelLibrary::from_cards(&p.models).unwrap();
        let ckt = SizedCircuit::build(
            &p.jigs[0].netlist,
            &vars(&[("w", 10e-6), ("l", 1e-6)]),
            &lib,
        )
        .unwrap();
        assert_eq!(ckt.mosfets.len(), 1);
        assert_eq!(ckt.mosfets[0].w, 10e-6);
        assert_eq!(ckt.mosfets[0].l, 2e-6);
    }

    #[test]
    fn missing_variable_is_eval_error() {
        let p = parse_problem(
            ".model nmos nmos level=1\n.jig j\nm1 d g 0 0 nmos w='W' l=1u\n.endjig\n",
        )
        .unwrap();
        let lib = ModelLibrary::from_cards(&p.models).unwrap();
        let err = SizedCircuit::build(&p.jigs[0].netlist, &HashMap::new(), &lib).unwrap_err();
        assert!(matches!(err, BuildError::Eval { .. }));
    }

    #[test]
    fn internal_nodes_for_bsim_template() {
        let cards = ProcessDeck::C2Bsim.cards();
        let lib = ModelLibrary::from_cards(&cards).unwrap();
        let p = parse_problem(".jig j\nm1 d g s 0 nmos w=10u l=2u\n.endjig\n").unwrap();
        let ckt = SizedCircuit::build(&p.jigs[0].netlist, &HashMap::new(), &lib).unwrap();
        // d, g, s + 2 internal nodes
        assert_eq!(ckt.nodes.len(), 5);
        assert!(ckt.nodes.get("m1#d").is_some());
        assert!(ckt.nodes.get("m1#s").is_some());
        assert_eq!(ckt.linear.len(), 2); // the two series resistors
        assert_eq!(ckt.mosfets[0].d, ckt.nodes.get("m1#d"));
    }

    #[test]
    fn unflattened_instance_rejected() {
        let p = parse_problem(".subckt cell a\nr1 a 0 1k\n.ends\n.jig j\nx1 n cell\n.endjig\n")
            .unwrap();
        let lib = ModelLibrary::new();
        let err = SizedCircuit::build(&p.jigs[0].netlist, &HashMap::new(), &lib).unwrap_err();
        assert!(matches!(err, BuildError::NotFlat(_)));
    }

    #[test]
    fn negative_resistance_rejected() {
        let p = parse_problem(".jig j\nr1 a 0 '0-5'\n.endjig\n").unwrap();
        let err = SizedCircuit::build(&p.jigs[0].netlist, &HashMap::new(), &ModelLibrary::new())
            .unwrap_err();
        assert!(matches!(err, BuildError::BadValue { .. }));
    }

    #[test]
    fn tiny_geometry_clamped_not_rejected() {
        let p =
            parse_problem(".model nmos nmos level=1\n.jig j\nm1 d g 0 0 nmos w=1f l=1f\n.endjig\n")
                .unwrap();
        let lib = ModelLibrary::from_cards(&p.models).unwrap();
        let ckt = SizedCircuit::build(&p.jigs[0].netlist, &HashMap::new(), &lib).unwrap();
        assert_eq!(ckt.mosfets[0].w, 1e-9);
    }
}
