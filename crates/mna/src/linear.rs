//! Small-signal linearization of a circuit at a dc operating point.
//!
//! [`LinearSystem`] is the shared contract between the two analysis
//! paths of the toolkit: the direct per-frequency complex ac solve
//! implemented here, and the AWE moment-matching path in `oblx-awe`.
//! Both consume exactly the same real `G`/`C` matrices, input vector,
//! and output selector, so any disagreement between them is a property
//! of the *method*, never of the circuit description.

use crate::assemble::SizedCircuit;
use crate::dc::OpPoint;
use crate::elements::{stamp, stamp_conductance, stamp_vccs, LinElement, Stamper};
use crate::sparse_map::SparseStampMap;
use oblx_devices::{BjtOp, DiodeOp, MosOp};
use oblx_linalg::{Complex, Lu, Mat, SingularMatrixError};
use std::collections::HashMap;

/// Weak tie of device terminals to ground, matching the dc solve.
pub(crate) const GMIN: f64 = 1e-12;

/// Stamps every linear element and linearized device of `circuit` into
/// the `G` and `C` sinks, in a fixed circuit-structure-determined write
/// order.
///
/// This single function defines the stamping sequence for *every* sink:
/// the dense matrices of [`LinearSystem::restamp`], the pattern
/// recorder behind [`SparseStampMap::build`], and the slot writer of
/// [`SparseStampMap::stamp`]. Keeping them on one code path is what
/// makes the dense and sparse assemblies bit-identical cell by cell.
#[allow(clippy::too_many_arguments)]
pub(crate) fn stamp_system<SG: Stamper, SC: Stamper>(
    g: &mut SG,
    c: &mut SC,
    rhs_scratch: &mut [f64],
    n: usize,
    circuit: &SizedCircuit,
    mos_ops: &[MosOp],
    bjt_ops: &[BjtOp],
    diode_ops: &[DiodeOp],
) {
    for el in circuit.linear.iter() {
        el.stamp_dc(g, rhs_scratch, n, 0.0);
        el.stamp_ac(c, n);
    }

    for (m, mop) in circuit.mosfets.iter().zip(mos_ops.iter()) {
        stamp_vccs(g, m.d, m.s, m.g, m.s, mop.gm);
        stamp_conductance(g, m.d, m.s, mop.gds);
        stamp_vccs(g, m.d, m.s, m.b, m.s, mop.gmbs);
        stamp_conductance(c, m.g, m.s, mop.caps.cgs);
        stamp_conductance(c, m.g, m.d, mop.caps.cgd);
        stamp_conductance(c, m.g, m.b, mop.caps.cgb);
        stamp_conductance(c, m.b, m.d, mop.caps.cbd);
        stamp_conductance(c, m.b, m.s, mop.caps.cbs);
        for node in [m.d, m.g, m.s, m.b] {
            stamp(g, node, node, GMIN);
        }
    }
    for (q, qop) in circuit.bjts.iter().zip(bjt_ops.iter()) {
        stamp_vccs(g, q.c, q.e, q.b, q.e, qop.gm_be);
        stamp_conductance(g, q.c, q.e, qop.go);
        stamp_conductance(g, q.b, q.e, qop.gpi);
        // gmu: ∂ib/∂vce VCCS into the base.
        stamp_vccs(g, q.b, q.e, q.c, q.e, qop.gmu);
        stamp_conductance(c, q.b, q.e, qop.cpi);
        stamp_conductance(c, q.b, q.c, qop.cmu);
        for node in [q.c, q.b, q.e] {
            stamp(g, node, node, GMIN);
        }
    }

    for (d, dop) in circuit.diodes.iter().zip(diode_ops.iter()) {
        stamp_conductance(g, d.a, d.k, dop.gd);
        stamp_conductance(c, d.a, d.k, dop.cd);
        for node in [d.a, d.k] {
            stamp(g, node, node, GMIN);
        }
    }
}

/// Where a named stimulus source attaches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SourceRef {
    /// Voltage source: unit stimulus on this branch row.
    V { branch: usize },
    /// Current source between `p` and `m`.
    I { p: Option<usize>, m: Option<usize> },
}

/// A (possibly differential) output probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutputSelector {
    /// Positive node index (`None` = ground).
    pub p: Option<usize>,
    /// Negative node index (`None` = ground).
    pub m: Option<usize>,
}

impl OutputSelector {
    /// Reads the probe from a solution vector.
    pub fn read<T: Copy + std::ops::Sub<Output = T> + Default>(&self, x: &[T]) -> T {
        let vp = self.p.map_or_else(T::default, |i| x[i]);
        let vm = self.m.map_or_else(T::default, |i| x[i]);
        vp - vm
    }

    /// The selector as a dense row vector of length `dim`.
    pub fn as_vector(&self, dim: usize) -> Vec<f64> {
        let mut l = vec![0.0; dim];
        if let Some(i) = self.p {
            l[i] += 1.0;
        }
        if let Some(i) = self.m {
            l[i] -= 1.0;
        }
        l
    }
}

/// The small-signal MNA system `(G + sC)·x = b` at a fixed operating
/// point.
#[derive(Debug, Clone)]
pub struct LinearSystem {
    /// Conductance matrix (includes device transconductances).
    pub g: Mat<f64>,
    /// Susceptance (capacitance/inductance) matrix.
    pub c: Mat<f64>,
    n_nodes: usize,
    sources: HashMap<String, SourceRef>,
    node_index: HashMap<String, usize>,
    stamp_map: SparseStampMap,
}

impl LinearSystem {
    /// Linearizes `circuit` at operating point `op`.
    ///
    /// Device small-signal conductances and capacitances come from the
    /// encapsulated evaluators' operating-point structs; a `gmin` of
    /// 1 pS ties device terminals weakly to ground exactly as in the dc
    /// solve.
    pub fn from_op(circuit: &SizedCircuit, op: &OpPoint) -> LinearSystem {
        Self::from_device_ops(circuit, &op.mos_ops, &op.bjt_ops, &op.diode_ops)
    }

    /// Linearizes `circuit` with externally supplied device operating
    /// points — the relaxed-dc path, where OBLX evaluates the devices at
    /// *annealed* (not Newton-solved) bias voltages and stamps the jig
    /// circuit from those.
    ///
    /// `mos_ops`/`bjt_ops` must be parallel to `circuit.mosfets` /
    /// `circuit.bjts`.
    ///
    /// # Panics
    ///
    /// Panics when the op slices do not match the circuit's device
    /// lists.
    pub fn from_device_ops(
        circuit: &SizedCircuit,
        mos_ops: &[MosOp],
        bjt_ops: &[BjtOp],
        diode_ops: &[DiodeOp],
    ) -> LinearSystem {
        let n = circuit.nodes.len();
        let dim = circuit.dim();
        let mut sources = HashMap::new();
        for (el, name) in circuit.linear.iter().zip(circuit.linear_names.iter()) {
            match *el {
                LinElement::Vsource { branch, .. } => {
                    sources.insert(name.clone(), SourceRef::V { branch });
                }
                LinElement::Isource { p, m, .. } => {
                    sources.insert(name.clone(), SourceRef::I { p, m });
                }
                _ => {}
            }
        }
        let node_index = circuit
            .nodes
            .iter()
            .map(|(i, s)| (s.to_string(), i))
            .collect();
        let mut sys = LinearSystem {
            g: Mat::zeros(dim, dim),
            c: Mat::zeros(dim, dim),
            n_nodes: n,
            sources,
            node_index,
            stamp_map: SparseStampMap::build(circuit, mos_ops, bjt_ops, diode_ops),
        };
        sys.restamp(circuit, mos_ops, bjt_ops, diode_ops);
        sys
    }

    /// The structural (value-independent) nonzero pattern of `G ∪ C`
    /// with its element→slot write map, as recorded at build time.
    pub fn stamp_map(&self) -> &SparseStampMap {
        &self.stamp_map
    }

    /// Gathers the current dense `G`/`C` values into slot arrays
    /// parallel to [`SparseStampMap::entries`]. Because dense stamping
    /// and sparse slot replay accumulate each cell in the same
    /// chronological order, the gathered values are bit-identical to a
    /// direct [`SparseStampMap::stamp`] from the same operating point.
    pub fn sparse_vals_into(&self, g_vals: &mut Vec<f64>, c_vals: &mut Vec<f64>) {
        let entries = self.stamp_map.entries();
        g_vals.clear();
        c_vals.clear();
        g_vals.reserve(entries.len());
        c_vals.reserve(entries.len());
        for &(r, c) in entries {
            g_vals.push(self.g.get(r, c));
            c_vals.push(self.c.get(r, c));
        }
    }

    /// Re-stamps `G`/`C` in place from the circuit and fresh device
    /// operating points, reusing the matrix allocations. The circuit
    /// must have the same structure (nodes, branches, device lists) the
    /// system was built from; source and node name tables are untouched.
    ///
    /// This is the hot path of incremental cost evaluation: a jig whose
    /// device operating points changed is re-stamped and re-analyzed
    /// without rebuilding name maps or reallocating matrices.
    ///
    /// # Panics
    ///
    /// Panics when the op slices or circuit dimensions do not match.
    pub fn restamp(
        &mut self,
        circuit: &SizedCircuit,
        mos_ops: &[MosOp],
        bjt_ops: &[BjtOp],
        diode_ops: &[DiodeOp],
    ) {
        assert_eq!(mos_ops.len(), circuit.mosfets.len(), "mos op mismatch");
        assert_eq!(bjt_ops.len(), circuit.bjts.len(), "bjt op mismatch");
        assert_eq!(diode_ops.len(), circuit.diodes.len(), "diode op mismatch");
        let n = circuit.nodes.len();
        let dim = circuit.dim();
        assert_eq!(n, self.n_nodes, "node count mismatch in restamp");
        assert_eq!(dim, self.g.rows(), "dimension mismatch in restamp");
        self.g.clear();
        self.c.clear();
        let mut rhs_scratch = vec![0.0; dim];
        stamp_system(
            &mut self.g,
            &mut self.c,
            &mut rhs_scratch,
            n,
            circuit,
            mos_ops,
            bjt_ops,
            diode_ops,
        );
    }

    /// MNA dimension (nodes + branches).
    pub fn dim(&self) -> usize {
        self.g.rows()
    }

    /// Number of node unknowns.
    pub fn node_count(&self) -> usize {
        self.n_nodes
    }

    /// The unit-stimulus input vector for the named independent source,
    /// or `None` if no such source exists.
    pub fn input_vector(&self, source: &str) -> Option<Vec<f64>> {
        let mut b = vec![0.0; self.dim()];
        match *self.sources.get(source)? {
            SourceRef::V { branch } => b[self.n_nodes + branch] = 1.0,
            SourceRef::I { p, m } => {
                // Unit current p → m through the source.
                if let Some(i) = p {
                    b[i] -= 1.0;
                }
                if let Some(i) = m {
                    b[i] += 1.0;
                }
            }
        }
        Some(b)
    }

    /// The output probe for named node(s), or `None` when a non-ground
    /// node is unknown.
    pub fn output_selector(&self, out_p: &str, out_m: Option<&str>) -> Option<OutputSelector> {
        let resolve = |name: &str| -> Option<Option<usize>> {
            if crate::NodeMap::is_ground(name) {
                Some(None)
            } else {
                self.node_index.get(name).map(|&i| Some(i))
            }
        };
        let p = resolve(out_p)?;
        let m = match out_m {
            Some(name) => resolve(name)?,
            None => None,
        };
        Some(OutputSelector { p, m })
    }

    /// Solves `(G + jωC)·x = b` at angular frequency `omega`.
    ///
    /// # Errors
    ///
    /// [`SingularMatrixError`] if the complex system is singular.
    pub fn solve_ac(&self, b: &[f64], omega: f64) -> Result<Vec<Complex>, SingularMatrixError> {
        let dim = self.dim();
        let mut y = Mat::<Complex>::zeros(dim, dim);
        for r in 0..dim {
            for c_idx in 0..dim {
                let gr = self.g.get(r, c_idx);
                let cc = self.c.get(r, c_idx);
                if gr != 0.0 || cc != 0.0 {
                    y[(r, c_idx)] = Complex::new(gr, omega * cc);
                }
            }
        }
        let bc: Vec<Complex> = b.iter().map(|&v| Complex::from_real(v)).collect();
        Lu::factor(y).map(|lu| lu.solve(&bc))
    }

    /// The complex transfer value `probe(x)` for unit stimulus from
    /// `source` at `omega`.
    ///
    /// # Errors
    ///
    /// [`SingularMatrixError`] on a singular system; returns `None`-like
    /// zero if the source or probe is unknown — callers should validate
    /// names first via [`LinearSystem::input_vector`].
    pub fn transfer(
        &self,
        source: &str,
        out: OutputSelector,
        omega: f64,
    ) -> Result<Complex, SingularMatrixError> {
        let b = match self.input_vector(source) {
            Some(b) => b,
            None => return Ok(Complex::ZERO),
        };
        let x = self.solve_ac(&b, omega)?;
        let vp = out.p.map_or(Complex::ZERO, |i| x[i]);
        let vm = out.m.map_or(Complex::ZERO, |i| x[i]);
        Ok(vp - vm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dc::solve_dc;
    use oblx_devices::process::ProcessDeck;
    use oblx_devices::ModelLibrary;
    use oblx_netlist::parse_problem;
    use std::collections::HashMap as Map;

    fn system(src: &str, deck: Option<ProcessDeck>) -> (SizedCircuit, LinearSystem) {
        let p = parse_problem(src).unwrap();
        let mut cards = p.models.clone();
        if let Some(d) = deck {
            cards.extend(d.cards());
        }
        let lib = ModelLibrary::from_cards(&cards).unwrap();
        let flat = p.jigs[0].netlist.flatten(&p.subckts).unwrap();
        let ckt = SizedCircuit::build(&flat, &Map::new(), &lib).unwrap();
        let op = solve_dc(&ckt).unwrap();
        let sys = LinearSystem::from_op(&ckt, &op);
        (ckt, sys)
    }

    #[test]
    fn rc_lowpass_pole() {
        let (_, sys) = system(
            ".jig j\nvin in 0 0 ac 1\nr1 in out 1k\nc1 out 0 1u\n.endjig\n",
            None,
        );
        let out = sys.output_selector("out", None).unwrap();
        // dc gain 1, −3 dB at ω = 1/RC = 1000 rad/s.
        let h0 = sys.transfer("vin", out, 0.0).unwrap();
        assert!((h0.norm() - 1.0).abs() < 1e-9);
        let hp = sys.transfer("vin", out, 1000.0).unwrap();
        assert!((hp.norm() - 1.0 / 2.0f64.sqrt()).abs() < 1e-6);
        assert!((hp.arg() + std::f64::consts::FRAC_PI_4).abs() < 1e-6);
    }

    #[test]
    fn rlc_resonance() {
        // Series RLC driven by voltage, output across C: peak near
        // ω0 = 1/√(LC) = 1e6 rad/s.
        let (_, sys) = system(
            ".jig j\nvin in 0 0 ac 1\nr1 in a 10\nl1 a b 1m\nc1 b 0 1n\n.endjig\n",
            None,
        );
        let out = sys.output_selector("b", None).unwrap();
        let at_res = sys.transfer("vin", out, 1.0e6).unwrap().norm();
        let off_res = sys.transfer("vin", out, 3.0e6).unwrap().norm();
        assert!(at_res > 10.0, "Q boost at resonance, got {at_res}");
        assert!(off_res < 1.0);
    }

    #[test]
    fn common_source_gain_matches_hand_calc() {
        let (ckt, sys) = system(
            ".jig j\nvdd vdd 0 5\nvin g 0 1.2 ac 1\nrd vdd d 20k\nm1 d g 0 0 nmos w=50u l=2u\n.endjig\n",
            Some(ProcessDeck::C2Level1),
        );
        let op = solve_dc(&ckt).unwrap();
        let gm = op.mos_ops[0].gm;
        let gds = op.mos_ops[0].gds;
        let expect = gm / (1.0 / 20e3 + gds);
        let out = sys.output_selector("d", None).unwrap();
        let h0 = sys.transfer("vin", out, 0.0).unwrap();
        assert!(
            (h0.norm() - expect).abs() / expect < 1e-6,
            "|A| = {} vs hand {expect}",
            h0.norm()
        );
        // Inverting stage: phase ≈ 180°.
        assert!(h0.re < 0.0);
    }

    #[test]
    fn output_selector_differential_and_ground() {
        let (_, sys) = system(
            ".jig j\nvin in 0 0 ac 1\nr1 in a 1k\nr2 a 0 1k\n.endjig\n",
            None,
        );
        let diff = sys.output_selector("in", Some("a")).unwrap();
        let h = sys.transfer("vin", diff, 0.0).unwrap();
        assert!((h.norm() - 0.5).abs() < 1e-9);
        assert!(sys.output_selector("bogus", None).is_none());
        let gnd = sys.output_selector("0", None).unwrap();
        let hz = sys.transfer("vin", gnd, 0.0).unwrap();
        assert_eq!(hz.norm(), 0.0);
    }

    #[test]
    fn isource_stimulus() {
        // Unit ac current into a 2k resistor: |Z| = 2000.
        let (_, sys) = system(".jig j\ni1 0 out 1u ac 1\nr1 out 0 2k\n.endjig\n", None);
        let out = sys.output_selector("out", None).unwrap();
        let h = sys.transfer("i1", out, 0.0).unwrap();
        assert!((h.norm() - 2000.0).abs() < 1e-6);
    }

    #[test]
    fn unknown_source_gives_zero() {
        let (_, sys) = system(".jig j\nv1 a 0 1\nr1 a 0 1k\n.endjig\n", None);
        let out = sys.output_selector("a", None).unwrap();
        assert_eq!(sys.transfer("nosuch", out, 0.0).unwrap(), Complex::ZERO);
    }
}
