//! Newton–Raphson dc operating-point analysis with damping, gmin, and
//! source stepping.
//!
//! This is the CPU cost the relaxed-dc formulation amortizes away: a
//! full solve here runs tens of Newton iterations, each of which builds
//! and factors the Jacobian. OBLX instead *anneals* Kirchhoff
//! correctness, calling into [`linearize_at`] only for its occasional
//! gradient-directed moves.

use crate::assemble::SizedCircuit;
use crate::elements::{stamp, stamp_vec};
use oblx_devices::{BjtOp, DiodeOp, MosOp};
use oblx_linalg::{Lu, Mat};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Options controlling the Newton–Raphson solve.
#[derive(Debug, Clone, Copy)]
pub struct DcOptions {
    /// Maximum Newton iterations per source step.
    pub max_iters: usize,
    /// Absolute voltage convergence tolerance (V).
    pub abstol_v: f64,
    /// Relative voltage convergence tolerance.
    pub reltol: f64,
    /// KCL residual tolerance (A).
    pub abstol_i: f64,
    /// Minimum conductance from every device node to ground (S).
    pub gmin: f64,
    /// Per-iteration voltage step clamp (V).
    pub max_step: f64,
    /// Number of source-stepping ramp points when direct solve fails.
    pub source_steps: usize,
}

impl Default for DcOptions {
    fn default() -> Self {
        DcOptions {
            max_iters: 120,
            abstol_v: 1e-9,
            reltol: 1e-6,
            abstol_i: 1e-10,
            gmin: 1e-12,
            max_step: 1.0,
            source_steps: 12,
        }
    }
}

/// Error from the dc solver.
#[derive(Debug, Clone, PartialEq)]
pub enum DcError {
    /// The Jacobian became singular (floating node or zero pivot).
    Singular,
    /// Newton iterations did not converge, even with source stepping.
    NoConvergence {
        /// Residual at the best iterate (A).
        residual: f64,
    },
}

impl fmt::Display for DcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DcError::Singular => write!(f, "singular jacobian (floating node?)"),
            DcError::NoConvergence { residual } => {
                write!(f, "newton did not converge (residual {residual:.3e} A)")
            }
        }
    }
}

impl Error for DcError {}

/// A solved dc operating point.
#[derive(Debug, Clone)]
pub struct OpPoint {
    /// Node voltages indexed like the circuit's [`crate::NodeMap`].
    pub v: Vec<f64>,
    /// Branch currents (voltage sources, inductors, VCVS).
    pub i_branch: Vec<f64>,
    /// Per-MOS operating points, parallel to `circuit.mosfets`.
    pub mos_ops: Vec<MosOp>,
    /// Per-BJT operating points, parallel to `circuit.bjts`.
    pub bjt_ops: Vec<BjtOp>,
    /// Per-diode operating points, parallel to `circuit.diodes`.
    pub diode_ops: Vec<DiodeOp>,
    /// Worst KCL residual at convergence (A).
    pub residual: f64,
    /// Newton iterations used (total across source steps).
    pub iterations: usize,
    node_index: HashMap<String, usize>,
    device_index: HashMap<String, (DeviceKind, usize)>,
}

/// Device family tag for the operating-point index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DeviceKind {
    Mos,
    Bjt,
    Diode,
}

impl OpPoint {
    /// Voltage of a named node (ground returns 0).
    pub fn voltage(&self, node: &str) -> Option<f64> {
        if node == "0" || node == "gnd" {
            return Some(0.0);
        }
        self.node_index.get(node).map(|&i| self.v[i])
    }

    /// Looks up a device operating-point quantity by flattened device
    /// name (`xamp.m1`) and quantity name (`cd`, `gm`, …).
    pub fn device_quantity(&self, device: &str, quantity: &str) -> Option<f64> {
        match self.device_index.get(device)? {
            (DeviceKind::Mos, i) => self.mos_ops[*i].quantity(quantity),
            (DeviceKind::Bjt, i) => self.bjt_ops[*i].quantity(quantity),
            (DeviceKind::Diode, i) => self.diode_ops[*i].quantity(quantity),
        }
    }

    /// Total power delivered by dc voltage sources (W) — the "static
    /// power" row of Tables 2 and 3.
    pub fn static_power(&self, circuit: &SizedCircuit) -> f64 {
        let mut p = 0.0;
        for el in &circuit.linear {
            if let crate::elements::LinElement::Vsource { dc, branch, .. } = el {
                p += dc * -self.i_branch[*branch];
            }
        }
        p.abs()
    }
}

/// One Newton linearization of the full nonlinear system at voltages
/// `x`: returns the Jacobian and residual, i.e. `J·Δ = −F`.
///
/// Exposed publicly because OBLX's relaxed-dc Newton moves reuse it.
pub fn linearize_at(
    circuit: &SizedCircuit,
    x: &[f64],
    src_scale: f64,
    gmin: f64,
) -> (Mat<f64>, Vec<f64>) {
    let n = circuit.nodes.len();
    let dim = circuit.dim();
    let mut jac = Mat::zeros(dim, dim);
    let mut f = vec![0.0; dim];

    // Linear elements: G·x − rhs contributes to F; G contributes to J.
    let mut g = Mat::zeros(dim, dim);
    let mut rhs = vec![0.0; dim];
    for el in &circuit.linear {
        el.stamp_dc(&mut g, &mut rhs, n, src_scale);
    }
    let gx = g.mul_vec(x);
    for r in 0..dim {
        f[r] += gx[r] - rhs[r];
        for c in 0..dim {
            let v = g.get(r, c);
            if v != 0.0 {
                jac.add_at(r, c, v);
            }
        }
    }

    let volt = |node: Option<usize>| -> f64 { node.map_or(0.0, |i| x[i]) };

    // MOS devices.
    for m in &circuit.mosfets {
        let op = m
            .model
            .op(m.w, m.l, volt(m.d), volt(m.g), volt(m.s), volt(m.b));
        // Channel current out of drain, into source.
        stamp_vec(&mut f, m.d, op.id);
        stamp_vec(&mut f, m.s, -op.id);
        let gsum = op.gm + op.gds + op.gmbs;
        stamp(&mut jac, m.d, m.d, op.gds);
        stamp(&mut jac, m.d, m.g, op.gm);
        stamp(&mut jac, m.d, m.b, op.gmbs);
        stamp(&mut jac, m.d, m.s, -gsum);
        stamp(&mut jac, m.s, m.d, -op.gds);
        stamp(&mut jac, m.s, m.g, -op.gm);
        stamp(&mut jac, m.s, m.b, -op.gmbs);
        stamp(&mut jac, m.s, m.s, gsum);
        // gmin ties every device terminal weakly to ground.
        for i in [m.d, m.g, m.s, m.b].into_iter().flatten() {
            jac.add_at(i, i, gmin);
            f[i] += gmin * x[i];
        }
    }

    // BJTs.
    for q in &circuit.bjts {
        let op = q.model.op(q.area, volt(q.c), volt(q.b), volt(q.e));
        stamp_vec(&mut f, q.c, op.ic);
        stamp_vec(&mut f, q.b, op.ib);
        stamp_vec(&mut f, q.e, -(op.ic + op.ib));
        // ic(vbe, vce), ib(vbe, vce) with vbe = vb − ve, vce = vc − ve.
        stamp(&mut jac, q.c, q.b, op.gm_be);
        stamp(&mut jac, q.c, q.c, op.go);
        stamp(&mut jac, q.c, q.e, -(op.gm_be + op.go));
        stamp(&mut jac, q.b, q.b, op.gpi);
        stamp(&mut jac, q.b, q.c, op.gmu);
        stamp(&mut jac, q.b, q.e, -(op.gpi + op.gmu));
        stamp(&mut jac, q.e, q.b, -(op.gm_be + op.gpi));
        stamp(&mut jac, q.e, q.c, -(op.go + op.gmu));
        stamp(&mut jac, q.e, q.e, op.gm_be + op.go + op.gpi + op.gmu);
        for i in [q.c, q.b, q.e].into_iter().flatten() {
            jac.add_at(i, i, gmin);
            f[i] += gmin * x[i];
        }
    }

    // Diodes.
    for d in &circuit.diodes {
        let op = d.model.op(d.area, volt(d.a) - volt(d.k));
        stamp_vec(&mut f, d.a, op.id);
        stamp_vec(&mut f, d.k, -op.id);
        stamp(&mut jac, d.a, d.a, op.gd);
        stamp(&mut jac, d.k, d.k, op.gd);
        stamp(&mut jac, d.a, d.k, -op.gd);
        stamp(&mut jac, d.k, d.a, -op.gd);
        for i in [d.a, d.k].into_iter().flatten() {
            jac.add_at(i, i, gmin);
            f[i] += gmin * x[i];
        }
    }

    (jac, f)
}

fn newton_loop(
    circuit: &SizedCircuit,
    x: &mut [f64],
    src_scale: f64,
    opts: &DcOptions,
) -> Result<(f64, usize), DcError> {
    let n = circuit.nodes.len();
    let mut best_residual = f64::INFINITY;
    let mut last_residual = f64::INFINITY;
    // Adaptive damping: halved whenever the residual fails to shrink
    // (kinked Jacobians near region boundaries make undamped Newton
    // oscillate), restored on progress.
    let mut damping = 1.0f64;
    for iter in 0..opts.max_iters {
        let (jac, f) = linearize_at(circuit, x, src_scale, opts.gmin);
        let residual = f[..n].iter().fold(0.0f64, |a, &b| a.max(b.abs()));
        best_residual = best_residual.min(residual);
        if residual > 1.2 * last_residual {
            // Clear overshoot: oscillating across a model kink.
            damping = (damping * 0.5).max(1.0 / 16.0);
        } else if residual < last_residual {
            damping = (damping * 2.0).min(1.0);
        }
        last_residual = residual;
        let lu = Lu::factor(jac).map_err(|_| DcError::Singular)?;
        let neg_f: Vec<f64> = f.iter().map(|&v| -v).collect();
        let delta = lu.solve(&neg_f);
        let mut max_dv = 0.0f64;
        for (xi, di) in x.iter_mut().zip(delta.iter()) {
            let step = (damping * di).clamp(-opts.max_step, opts.max_step);
            *xi += step;
            max_dv = max_dv.max(step.abs());
        }
        let vnorm = x[..n].iter().fold(0.0f64, |a, &b| a.max(b.abs()));
        if max_dv < opts.abstol_v + opts.reltol * vnorm && residual < opts.abstol_i {
            return Ok((residual, iter + 1));
        }
    }
    Err(DcError::NoConvergence {
        residual: best_residual,
    })
}

/// Solves the dc operating point with default options.
///
/// # Errors
///
/// See [`solve_dc_with`].
pub fn solve_dc(circuit: &SizedCircuit) -> Result<OpPoint, DcError> {
    solve_dc_with(circuit, &DcOptions::default(), None)
}

/// Solves the dc operating point.
///
/// Tries a direct Newton solve from `initial` (or zero); on failure,
/// ramps all independent sources from zero in `source_steps` stages,
/// reusing each stage's solution as the next starting point.
///
/// # Errors
///
/// [`DcError::Singular`] for structurally defective circuits,
/// [`DcError::NoConvergence`] when even source stepping fails.
pub fn solve_dc_with(
    circuit: &SizedCircuit,
    opts: &DcOptions,
    initial: Option<&[f64]>,
) -> Result<OpPoint, DcError> {
    let dim = circuit.dim();
    let mut x = vec![0.0; dim];
    if let Some(init) = initial {
        x[..init.len().min(dim)].copy_from_slice(&init[..init.len().min(dim)]);
    }

    let mut total_iters = 0usize;
    let direct = newton_loop(circuit, &mut x, 1.0, opts);
    let residual = match direct {
        Ok((r, it)) => {
            total_iters += it;
            r
        }
        Err(DcError::Singular) => return Err(DcError::Singular),
        Err(_) => {
            // Source stepping from a cold start.
            x.fill(0.0);
            let mut r_last = 0.0;
            for step in 1..=opts.source_steps {
                let scale = step as f64 / opts.source_steps as f64;
                let relaxed = DcOptions {
                    max_iters: opts.max_iters * 2,
                    ..*opts
                };
                let (r, it) = newton_loop(circuit, &mut x, scale, &relaxed)?;
                total_iters += it;
                r_last = r;
            }
            r_last
        }
    };

    // Final device evaluations at the solution.
    let volt = |node: Option<usize>| -> f64 { node.map_or(0.0, |i| x[i]) };
    let mut mos_ops = Vec::with_capacity(circuit.mosfets.len());
    let mut device_index = HashMap::new();
    for (i, m) in circuit.mosfets.iter().enumerate() {
        mos_ops.push(
            m.model
                .op(m.w, m.l, volt(m.d), volt(m.g), volt(m.s), volt(m.b)),
        );
        device_index.insert(m.name.clone(), (DeviceKind::Mos, i));
    }
    let mut bjt_ops = Vec::with_capacity(circuit.bjts.len());
    for (i, q) in circuit.bjts.iter().enumerate() {
        bjt_ops.push(q.model.op(q.area, volt(q.c), volt(q.b), volt(q.e)));
        device_index.insert(q.name.clone(), (DeviceKind::Bjt, i));
    }
    let mut diode_ops = Vec::with_capacity(circuit.diodes.len());
    for (i, d) in circuit.diodes.iter().enumerate() {
        diode_ops.push(d.model.op(d.area, volt(d.a) - volt(d.k)));
        device_index.insert(d.name.clone(), (DeviceKind::Diode, i));
    }
    let node_index = circuit
        .nodes
        .iter()
        .map(|(i, n)| (n.to_string(), i))
        .collect();

    let n = circuit.nodes.len();
    Ok(OpPoint {
        i_branch: x[n..].to_vec(),
        v: x[..n].to_vec(),
        mos_ops,
        bjt_ops,
        diode_ops,
        residual,
        iterations: total_iters,
        node_index,
        device_index,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use oblx_devices::process::ProcessDeck;
    use oblx_devices::{ModelLibrary, Region};
    use oblx_netlist::parse_problem;
    use std::collections::HashMap;

    fn build(src: &str, deck: Option<ProcessDeck>) -> SizedCircuit {
        let p = parse_problem(src).unwrap();
        let mut cards = p.models.clone();
        if let Some(d) = deck {
            cards.extend(d.cards());
        }
        let lib = ModelLibrary::from_cards(&cards).unwrap();
        let flat = p.jigs[0].netlist.flatten(&p.subckts).unwrap();
        SizedCircuit::build(&flat, &HashMap::new(), &lib).unwrap()
    }

    #[test]
    fn linear_ladder() {
        let ckt = build(
            ".jig j\nv1 in 0 9\nr1 in a 1k\nr2 a b 1k\nr3 b 0 1k\n.endjig\n",
            None,
        );
        let op = solve_dc(&ckt).unwrap();
        assert!((op.voltage("a").unwrap() - 6.0).abs() < 1e-9);
        assert!((op.voltage("b").unwrap() - 3.0).abs() < 1e-9);
        assert!((op.static_power(&ckt) - 27e-3).abs() < 1e-9);
    }

    #[test]
    fn diode_connected_nmos() {
        // 100 µA forced into a diode-connected NMOS: solves the gate
        // voltage such that id = 100 µA.
        let ckt = build(
            ".jig j\nvdd vdd 0 5\ni1 vdd d 100u\nm1 d d 0 0 nmos w=50u l=2u\n.endjig\n",
            Some(ProcessDeck::C2Level1),
        );
        let op = solve_dc(&ckt).unwrap();
        let vd = op.voltage("d").unwrap();
        assert!(vd > 0.7 && vd < 2.0, "vd = {vd}");
        let id = op.device_quantity("m1", "id").unwrap();
        assert!((id - 100e-6).abs() < 1e-7, "id = {id}");
        assert_eq!(op.mos_ops[0].region, Region::Saturation);
    }

    #[test]
    fn nmos_current_mirror() {
        let ckt = build(
            ".jig j\nvdd vdd 0 5\ni1 vdd d1 50u\nm1 d1 d1 0 0 nmos w=20u l=2u\nm2 d2 d1 0 0 nmos w=40u l=2u\nr1 vdd d2 10k\n.endjig\n",
            Some(ProcessDeck::C2Level1),
        );
        let op = solve_dc(&ckt).unwrap();
        // 2:1 mirror: output current ≈ 100 µA modulated by λ.
        let i2 = op.device_quantity("m2", "id").unwrap();
        assert!((i2 - 100e-6).abs() < 20e-6, "i2 = {i2}");
    }

    #[test]
    fn bjt_common_emitter() {
        let ckt = build(
            ".jig j\nvcc vcc 0 5\nvb b 0 0.67\nrc vcc c 5k\nq1 c b 0 npn\n.endjig\n",
            Some(ProcessDeck::BicmosC2),
        );
        let op = solve_dc(&ckt).unwrap();
        let vc = op.voltage("c").unwrap();
        assert!(vc > 0.2 && vc < 4.95, "vc = {vc}");
        let ic = op.device_quantity("q1", "ic").unwrap();
        assert!(ic > 1e-6 && ic < 2e-3, "ic = {ic}");
        // The collector resistor carries exactly ic.
        assert!(((5.0 - vc) / 5e3 - ic).abs() < 1e-9);
    }

    #[test]
    fn source_stepping_rescues_hard_start() {
        // Positive-feedback latch structure around a bistable pair can
        // defeat cold Newton; source stepping must still find a point.
        let ckt = build(
            ".jig j\nvdd vdd 0 5\nm1 a b 0 0 nmos w=20u l=2u\nm2 b a 0 0 nmos w=20u l=2u\nr1 vdd a 20k\nr2 vdd b 20k\nq1 c a 0 npn\nrc vdd c 1k\n.endjig\n",
            Some(ProcessDeck::BicmosC2),
        );
        let op = solve_dc(&ckt).unwrap();
        assert!(op.residual < 1e-9);
    }

    #[test]
    fn floating_node_is_singular() {
        let ckt = build(
            ".jig j\nv1 in 0 5\nr1 in out 1k\nc1 float 0 1p\n.endjig\n",
            None,
        );
        // `float` has only a capacitor — open at dc.
        assert_eq!(solve_dc(&ckt).unwrap_err(), DcError::Singular);
    }

    #[test]
    fn bsim_internal_nodes_participate() {
        let ckt = build(
            ".jig j\nvdd vdd 0 5\ni1 vdd d 100u\nm1 d d 0 0 nmos w=50u l=2u\n.endjig\n",
            Some(ProcessDeck::C2Bsim),
        );
        let op = solve_dc(&ckt).unwrap();
        // Internal drain node sits below the external drain by i·rd.
        let vd = op.voltage("d").unwrap();
        let vdi = op.voltage("m1#d").unwrap();
        assert!(vd > vdi, "series rd must drop voltage: {vd} vs {vdi}");
        assert!((vd - vdi - 100e-6 * 150.0).abs() < 2e-3);
    }

    #[test]
    fn prop_random_resistor_ladders_match_analytic() {
        // Random series resistor ladders driven by a source: the node
        // voltages must match the analytic voltage divider. Exercises
        // assembly, stamping, branch rows, and the LU path end to end.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for _case in 0..25 {
            let n = 2 + (next() * 6.0) as usize;
            let vs = 1.0 + 9.0 * next();
            let rs: Vec<f64> = (0..n).map(|_| 100.0 + 9900.0 * next()).collect();
            let mut src = format!(
                ".jig j
v1 n0 0 {vs}
"
            );
            for (i, r) in rs.iter().enumerate() {
                let a = format!("n{i}");
                let b = if i + 1 == n {
                    "0".to_string()
                } else {
                    format!("n{}", i + 1)
                };
                src.push_str(&format!(
                    "r{i} {a} {b} {r}
"
                ));
            }
            src.push_str(
                ".endjig
",
            );
            let ckt = build(&src, None);
            let op = solve_dc(&ckt).unwrap();
            let total: f64 = rs.iter().sum();
            // Analytic node voltages: vs · (remaining resistance)/total.
            let mut remaining = total;
            for (i, r) in rs.iter().enumerate() {
                let expect = vs * remaining / total;
                let got = op.voltage(&format!("n{i}")).unwrap();
                assert!(
                    (got - expect).abs() < 1e-9 * vs,
                    "node n{i}: {got} vs {expect}"
                );
                remaining -= r;
            }
            // Source current matches Ohm's law.
            assert!((op.i_branch[0].abs() - vs / total).abs() < 1e-12 * vs);
        }
    }

    #[test]
    fn differential_pair_balances() {
        let src = "\
.jig j
vdd vdd 0 5
vcm g1 0 2.5
vcm2 g2 0 2.5
ibias t 0 0
i1 vdd t 0
m1 d1 g1 t 0 nmos w=40u l=2u
m2 d2 g2 t 0 nmos w=40u l=2u
r1 vdd d1 10k
r2 vdd d2 10k
it t 0 100u
.endjig
";
        let ckt = build(src, Some(ProcessDeck::C2Level1));
        let op = solve_dc(&ckt).unwrap();
        let d1 = op.voltage("d1").unwrap();
        let d2 = op.voltage("d2").unwrap();
        assert!((d1 - d2).abs() < 1e-6, "symmetric pair must balance");
        let i1 = op.device_quantity("m1", "id").unwrap();
        assert!((i1 - 50e-6).abs() < 1e-6);
    }
}
