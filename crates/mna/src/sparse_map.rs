//! Precomputed element→nnz-slot stamping map for sparse MNA assembly.
//!
//! The write *positions* of MNA stamping depend only on circuit
//! structure (node interning and device lists), never on element
//! values, so one recording pass captures the full structural nonzero
//! pattern of `G ∪ C` plus, for every chronological stamp write, the
//! index of the nonzero slot it lands in. Re-stamping then becomes a
//! branch-free replay: each write accumulates into its precomputed
//! slot, producing value arrays parallel to the pattern's entry list —
//! the exact input layout [`oblx_linalg::SparseLu`] refactors over.
//!
//! Because replay performs the same additions in the same per-cell
//! order as dense stamping, the slot values are **bit-identical** to
//! the corresponding dense matrix cells.

use crate::assemble::SizedCircuit;
use crate::elements::Stamper;
use crate::linear::stamp_system;
use oblx_devices::{BjtOp, DiodeOp, MosOp};

/// Records write positions, ignoring values.
#[derive(Default)]
struct PatternRecorder {
    writes: Vec<(u32, u32)>,
}

impl Stamper for PatternRecorder {
    #[inline]
    fn add(&mut self, r: usize, c: usize, _v: f64) {
        self.writes.push((r as u32, c as u32));
    }
}

/// Replays a recorded write sequence into slot storage.
struct SlotWriter<'a> {
    vals: &'a mut [f64],
    slots: &'a [u32],
    pos: usize,
}

impl Stamper for SlotWriter<'_> {
    #[inline]
    fn add(&mut self, _r: usize, _c: usize, v: f64) {
        self.vals[self.slots[self.pos] as usize] += v;
        self.pos += 1;
    }
}

/// The structural `G ∪ C` nonzero pattern of one circuit, with the
/// chronological write→slot maps that let re-stamping write straight
/// into sparse value arrays.
///
/// Built once per [`crate::LinearSystem`]; shared by the `G` pattern
/// and any shifted `G + σC` expansion (both live on the union pattern,
/// with absent entries simply holding value zero).
#[derive(Debug, Clone)]
pub struct SparseStampMap {
    dim: usize,
    /// Union nonzero coordinates, sorted row-major, unique.
    entries: Vec<(usize, usize)>,
    /// Chronological `G` writes → entry index.
    g_slots: Vec<u32>,
    /// Chronological `C` writes → entry index.
    c_slots: Vec<u32>,
}

impl SparseStampMap {
    /// Records the stamping pattern of `circuit`.
    ///
    /// The op slices are only used to drive the (value-agnostic) write
    /// sequence; they must be parallel to the circuit's device lists.
    pub fn build(
        circuit: &SizedCircuit,
        mos_ops: &[MosOp],
        bjt_ops: &[BjtOp],
        diode_ops: &[DiodeOp],
    ) -> SparseStampMap {
        let dim = circuit.dim();
        let n = circuit.nodes.len();
        let mut g_rec = PatternRecorder::default();
        let mut c_rec = PatternRecorder::default();
        let mut rhs_scratch = vec![0.0; dim];
        stamp_system(
            &mut g_rec,
            &mut c_rec,
            &mut rhs_scratch,
            n,
            circuit,
            mos_ops,
            bjt_ops,
            diode_ops,
        );
        let mut entries: Vec<(usize, usize)> = g_rec
            .writes
            .iter()
            .chain(&c_rec.writes)
            .map(|&(r, c)| (r as usize, c as usize))
            .collect();
        entries.sort_unstable();
        entries.dedup();
        let slot_of = |writes: &[(u32, u32)]| -> Vec<u32> {
            writes
                .iter()
                .map(|&(r, c)| {
                    entries
                        .binary_search(&(r as usize, c as usize))
                        .expect("recorded write must be in union pattern")
                        as u32
                })
                .collect()
        };
        let g_slots = slot_of(&g_rec.writes);
        let c_slots = slot_of(&c_rec.writes);
        SparseStampMap {
            dim,
            entries,
            g_slots,
            c_slots,
        }
    }

    /// MNA dimension the pattern was recorded at.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The union nonzero coordinates, sorted row-major.
    pub fn entries(&self) -> &[(usize, usize)] {
        &self.entries
    }

    /// Structural nonzero count of the union pattern.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Sorted, deduplicated indices into [`SparseStampMap::entries`] that
    /// the `C` stamping sequence actually touches — the structural
    /// nonzero pattern of `C` as a subset of the union pattern. Lets a
    /// consumer build a compressed `C` (or `Cᵀ`) operator that skips the
    /// union entries only `G` owns.
    pub fn c_entry_indices(&self) -> Vec<u32> {
        let mut idx = self.c_slots.clone();
        idx.sort_unstable();
        idx.dedup();
        idx
    }

    /// Re-stamps `circuit` at fresh device operating points directly
    /// into sparse value arrays parallel to [`SparseStampMap::entries`]
    /// — the sparse counterpart of [`crate::LinearSystem::restamp`],
    /// with no dense matrix touched.
    ///
    /// # Panics
    ///
    /// Panics when the op slices or circuit dimensions do not match the
    /// recorded structure.
    pub fn stamp(
        &self,
        circuit: &SizedCircuit,
        mos_ops: &[MosOp],
        bjt_ops: &[BjtOp],
        diode_ops: &[DiodeOp],
        g_vals: &mut Vec<f64>,
        c_vals: &mut Vec<f64>,
    ) {
        assert_eq!(self.dim, circuit.dim(), "dimension mismatch in stamp");
        assert_eq!(mos_ops.len(), circuit.mosfets.len(), "mos op mismatch");
        assert_eq!(bjt_ops.len(), circuit.bjts.len(), "bjt op mismatch");
        assert_eq!(diode_ops.len(), circuit.diodes.len(), "diode op mismatch");
        g_vals.clear();
        g_vals.resize(self.entries.len(), 0.0);
        c_vals.clear();
        c_vals.resize(self.entries.len(), 0.0);
        let mut g_w = SlotWriter {
            vals: g_vals,
            slots: &self.g_slots,
            pos: 0,
        };
        let mut c_w = SlotWriter {
            vals: c_vals,
            slots: &self.c_slots,
            pos: 0,
        };
        let mut rhs_scratch = vec![0.0; self.dim];
        stamp_system(
            &mut g_w,
            &mut c_w,
            &mut rhs_scratch,
            circuit.nodes.len(),
            circuit,
            mos_ops,
            bjt_ops,
            diode_ops,
        );
        debug_assert_eq!(g_w.pos, self.g_slots.len(), "G write count drifted");
        debug_assert_eq!(c_w.pos, self.c_slots.len(), "C write count drifted");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dc::solve_dc;
    use crate::linear::LinearSystem;
    use oblx_devices::process::ProcessDeck;
    use oblx_devices::ModelLibrary;
    use oblx_netlist::parse_problem;
    use std::collections::HashMap;

    fn amp() -> (SizedCircuit, Vec<MosOp>) {
        let src = ".jig j\nvdd vdd 0 5\nvin g 0 1.2 ac 1\nrd vdd d 20k\n\
                   cl d 0 1p\nm1 d g 0 0 nmos w=50u l=2u\n.endjig\n";
        let p = parse_problem(src).unwrap();
        let mut cards = p.models.clone();
        cards.extend(ProcessDeck::C2Level1.cards());
        let lib = ModelLibrary::from_cards(&cards).unwrap();
        let flat = p.jigs[0].netlist.flatten(&p.subckts).unwrap();
        let ckt = SizedCircuit::build(&flat, &HashMap::new(), &lib).unwrap();
        let op = solve_dc(&ckt).unwrap();
        (ckt, op.mos_ops)
    }

    #[test]
    fn slot_replay_matches_dense_stamping_bitwise() {
        let (ckt, mos) = amp();
        let sys = LinearSystem::from_device_ops(&ckt, &mos, &[], &[]);
        let map = sys.stamp_map();
        let (mut g_vals, mut c_vals) = (Vec::new(), Vec::new());
        map.stamp(&ckt, &mos, &[], &[], &mut g_vals, &mut c_vals);
        let (mut g_ref, mut c_ref) = (Vec::new(), Vec::new());
        sys.sparse_vals_into(&mut g_ref, &mut c_ref);
        assert_eq!(g_vals.len(), map.nnz());
        for i in 0..map.nnz() {
            assert_eq!(g_vals[i].to_bits(), g_ref[i].to_bits(), "G slot {i}");
            assert_eq!(c_vals[i].to_bits(), c_ref[i].to_bits(), "C slot {i}");
        }
    }

    #[test]
    fn pattern_covers_every_dense_nonzero() {
        let (ckt, mos) = amp();
        let sys = LinearSystem::from_device_ops(&ckt, &mos, &[], &[]);
        let map = sys.stamp_map();
        let dim = sys.dim();
        for r in 0..dim {
            for c in 0..dim {
                if sys.g.get(r, c) != 0.0 || sys.c.get(r, c) != 0.0 {
                    assert!(
                        map.entries().binary_search(&(r, c)).is_ok(),
                        "dense nonzero ({r}, {c}) missing from pattern"
                    );
                }
            }
        }
    }

    #[test]
    fn restamp_with_new_ops_tracks_values() {
        let (ckt, mut mos) = amp();
        let sys = LinearSystem::from_device_ops(&ckt, &mos, &[], &[]);
        let map = sys.stamp_map().clone();
        mos[0].gm *= 2.0;
        mos[0].caps.cgs *= 3.0;
        let mut sys2 = sys.clone();
        sys2.restamp(&ckt, &mos, &[], &[]);
        let (mut g_vals, mut c_vals) = (Vec::new(), Vec::new());
        map.stamp(&ckt, &mos, &[], &[], &mut g_vals, &mut c_vals);
        let (mut g_ref, mut c_ref) = (Vec::new(), Vec::new());
        sys2.sparse_vals_into(&mut g_ref, &mut c_ref);
        for i in 0..map.nnz() {
            assert_eq!(g_vals[i].to_bits(), g_ref[i].to_bits());
            assert_eq!(c_vals[i].to_bits(), c_ref[i].to_bits());
        }
    }
}
