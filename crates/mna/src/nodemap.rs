//! Node-name to MNA-index mapping.

use std::collections::HashMap;

/// Maps node names to contiguous MNA indices; ground (`0`) maps to
/// `None`.
///
/// # Examples
///
/// ```
/// use oblx_mna::NodeMap;
///
/// let mut nm = NodeMap::new();
/// let a = nm.intern("a");
/// assert_eq!(a, Some(0));
/// assert_eq!(nm.intern("0"), None);
/// assert_eq!(nm.intern("a"), Some(0));
/// assert_eq!(nm.len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct NodeMap {
    names: Vec<String>,
    map: HashMap<String, usize>,
}

impl NodeMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        NodeMap::default()
    }

    /// Interns a node name, returning its index (`None` for ground).
    pub fn intern(&mut self, name: &str) -> Option<usize> {
        if name == "0" || name == "gnd" {
            return None;
        }
        if let Some(&i) = self.map.get(name) {
            return Some(i);
        }
        let i = self.names.len();
        self.names.push(name.to_string());
        self.map.insert(name.to_string(), i);
        Some(i)
    }

    /// Looks up an existing node without interning.
    pub fn get(&self, name: &str) -> Option<usize> {
        self.map.get(name).copied()
    }

    /// `true` when `name` denotes the ground node.
    pub fn is_ground(name: &str) -> bool {
        name == "0" || name == "gnd"
    }

    /// The name of node `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn name(&self, i: usize) -> &str {
        &self.names[i]
    }

    /// Number of non-ground nodes.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` when only ground exists.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(index, name)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &str)> {
        self.names.iter().enumerate().map(|(i, n)| (i, n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ground_aliases() {
        let mut nm = NodeMap::new();
        assert_eq!(nm.intern("0"), None);
        assert_eq!(nm.intern("gnd"), None);
        assert!(NodeMap::is_ground("0"));
        assert!(!NodeMap::is_ground("out"));
    }

    #[test]
    fn stable_indices_and_names() {
        let mut nm = NodeMap::new();
        let a = nm.intern("a").unwrap();
        let b = nm.intern("b").unwrap();
        assert_eq!((a, b), (0, 1));
        assert_eq!(nm.name(1), "b");
        assert_eq!(nm.get("a"), Some(0));
        assert_eq!(nm.get("zz"), None);
        assert_eq!(nm.iter().count(), 2);
    }
}
