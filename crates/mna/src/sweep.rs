//! dc transfer sweeps — the large-signal measurement behind "output
//! swing".
//!
//! The synthesis cost function estimates swing from saturation-margin
//! expressions (paper §IV); this sweep provides the ground-truth
//! measurement on the verification side: walk a source across a range,
//! re-solving the operating point continuation-style, and read off the
//! output excursion over which the stage still has gain.

use crate::assemble::SizedCircuit;
use crate::dc::{solve_dc_with, DcError, DcOptions};
use crate::elements::LinElement;

/// One point of a dc sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Swept source value (V or A).
    pub input: f64,
    /// All node voltages at this point.
    pub v: Vec<f64>,
}

/// Sweeps the named voltage source from `from` to `to` in `points`
/// steps, warm-starting each solve from the previous solution
/// (continuation), and returns the solved points.
///
/// # Errors
///
/// [`DcError::Singular`] if `source` does not exist;
/// [`DcError::NoConvergence`] if some point cannot be solved even with
/// source stepping.
///
/// # Panics
///
/// Panics if `points < 2`.
pub fn dc_sweep(
    circuit: &SizedCircuit,
    source: &str,
    from: f64,
    to: f64,
    points: usize,
) -> Result<Vec<SweepPoint>, DcError> {
    assert!(points >= 2, "a sweep needs at least two points");
    let idx = circuit
        .linear_names
        .iter()
        .position(|n| n == source)
        .ok_or(DcError::Singular)?;
    if !matches!(circuit.linear[idx], LinElement::Vsource { .. }) {
        return Err(DcError::Singular);
    }

    let opts = DcOptions {
        abstol_i: 1e-8,
        max_iters: 300,
        ..DcOptions::default()
    };
    let mut out = Vec::with_capacity(points);
    let mut warm: Option<Vec<f64>> = None;
    for k in 0..points {
        let value = from + (to - from) * k as f64 / (points - 1) as f64;
        let mut ckt = circuit.clone();
        if let LinElement::Vsource { dc, .. } = &mut ckt.linear[idx] {
            *dc = value;
        }
        let op = solve_dc_with(&ckt, &opts, warm.as_deref())?;
        let n = ckt.nodes.len();
        let mut x = vec![0.0; ckt.dim()];
        x[..n].copy_from_slice(&op.v);
        x[n..].copy_from_slice(&op.i_branch);
        warm = Some(x);
        out.push(SweepPoint {
            input: value,
            v: op.v,
        });
    }
    Ok(out)
}

/// Measures the output swing from a sweep: the excursion of `node`
/// over the input range where the incremental gain `|dVout/dVin|`
/// stays above `gain_floor` × (peak gain).
pub fn swing_from_sweep(points: &[SweepPoint], node: usize, gain_floor: f64) -> f64 {
    if points.len() < 3 {
        return 0.0;
    }
    // Incremental gain per interval.
    let mut gains = Vec::with_capacity(points.len() - 1);
    for pair in points.windows(2) {
        let dv_in = pair[1].input - pair[0].input;
        let dv_out = pair[1].v[node] - pair[0].v[node];
        gains.push(if dv_in.abs() > 0.0 {
            (dv_out / dv_in).abs()
        } else {
            0.0
        });
    }
    let peak = gains.iter().fold(0.0f64, |a, &b| a.max(b));
    if peak == 0.0 {
        return 0.0;
    }
    let threshold = gain_floor * peak;
    // Output excursion across the contiguous high-gain region around
    // the peak.
    let peak_idx = gains.iter().position(|&g| g == peak).expect("peak exists");
    let mut lo = peak_idx;
    while lo > 0 && gains[lo - 1] >= threshold {
        lo -= 1;
    }
    let mut hi = peak_idx;
    while hi + 1 < gains.len() && gains[hi + 1] >= threshold {
        hi += 1;
    }
    (points[hi + 1].v[node] - points[lo].v[node]).abs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use oblx_devices::process::ProcessDeck;
    use oblx_devices::ModelLibrary;
    use oblx_netlist::parse_problem;
    use std::collections::HashMap;

    fn circuit(src: &str, deck: Option<ProcessDeck>) -> SizedCircuit {
        let p = parse_problem(src).unwrap();
        let mut cards = p.models.clone();
        if let Some(d) = deck {
            cards.extend(d.cards());
        }
        let lib = ModelLibrary::from_cards(&cards).unwrap();
        let flat = p.jigs[0].netlist.flatten(&p.subckts).unwrap();
        SizedCircuit::build(&flat, &HashMap::new(), &lib).unwrap()
    }

    #[test]
    fn linear_divider_sweeps_linearly() {
        let ckt = circuit(
            ".jig j\nvin in 0 0\nr1 in out 1k\nr2 out 0 1k\n.endjig\n",
            None,
        );
        let pts = dc_sweep(&ckt, "vin", 0.0, 4.0, 9).unwrap();
        assert_eq!(pts.len(), 9);
        let out = ckt.nodes.get("out").unwrap();
        for p in &pts {
            assert!((p.v[out] - p.input / 2.0).abs() < 1e-9);
        }
        // A resistive divider has "infinite" swing at constant gain.
        let swing = swing_from_sweep(&pts, out, 0.5);
        assert!((swing - 2.0).abs() < 1e-9); // full output excursion
    }

    #[test]
    fn inverter_stage_swing_is_bounded_by_rails() {
        // Common-source stage: output swings inside (vdsat, vdd) only
        // while the device has gain.
        let src = "\
.jig j
vdd vdd 0 5
vin g 0 1.2
rd vdd out 20k
m1 out g 0 0 nmos w=50u l=2u
.endjig
";
        let ckt = circuit(src, Some(ProcessDeck::C2Level1));
        let pts = dc_sweep(&ckt, "vin", 0.6, 2.4, 37).unwrap();
        let out = ckt.nodes.get("out").unwrap();
        let swing = swing_from_sweep(&pts, out, 0.25);
        assert!(
            swing > 2.0 && swing < 5.0,
            "inverter swing = {swing} (must be substantial but < rail-to-rail)"
        );
        // Output is monotone decreasing in vin.
        for pair in pts.windows(2) {
            assert!(pair[1].v[out] <= pair[0].v[out] + 1e-9);
        }
    }

    #[test]
    fn unknown_source_rejected() {
        let ckt = circuit(".jig j\nvin in 0 0\nr1 in 0 1k\n.endjig\n", None);
        assert!(dc_sweep(&ckt, "nosuch", 0.0, 1.0, 3).is_err());
        // Sweeping a non-V element is also rejected.
        let ckt2 = circuit(".jig j\ni1 0 a 1m\nr1 a 0 1k\n.endjig\n", None);
        assert!(dc_sweep(&ckt2, "i1", 0.0, 1.0, 3).is_err());
    }

    #[test]
    fn degenerate_sweeps() {
        let pts: Vec<SweepPoint> = vec![];
        assert_eq!(swing_from_sweep(&pts, 0, 0.5), 0.0);
    }
}
