//! Modified nodal analysis and the SPICE-class reference simulator.
//!
//! This crate turns a flattened [`oblx_netlist::Netlist`] plus a design-
//! variable assignment and a [`oblx_devices::ModelLibrary`] into a
//! numerical circuit ([`SizedCircuit`]), then offers:
//!
//! * [`dc::solve_dc`] — a full Newton–Raphson dc operating-point solve
//!   with step damping and source stepping, exactly the per-evaluation
//!   cost the **relaxed-dc formulation avoids** inside the annealing
//!   loop. OBLX uses this machinery only for its occasional
//!   Newton–Raphson *moves*; the reference simulator uses it for every
//!   verification point (Tables 2 and 3's "Simulation" columns).
//! * [`linear::LinearSystem`] — the small-signal linearization at an
//!   operating point, exposed as real `G`/`C` MNA matrices plus input
//!   and output selectors. The same object feeds both the direct
//!   per-frequency complex ac solve (this crate) and AWE moment
//!   matching (`oblx-awe`), so the two analysis paths are guaranteed to
//!   describe the same circuit.
//!
//! # Examples
//!
//! ```
//! use oblx_netlist::parse_problem;
//! use oblx_devices::ModelLibrary;
//! use oblx_mna::{SizedCircuit, dc::solve_dc};
//! use std::collections::HashMap;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let p = parse_problem("\
//! .jig j
//! v1 in 0 5
//! r1 in out 1k
//! r2 out 0 1k
//! .endjig
//! ")?;
//! let lib = ModelLibrary::new();
//! let flat = p.jigs[0].netlist.flatten(&p.subckts)?;
//! let ckt = SizedCircuit::build(&flat, &HashMap::new(), &lib)?;
//! let op = solve_dc(&ckt)?;
//! assert!((op.voltage("out").unwrap() - 2.5).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

pub mod ac;
pub mod assemble;
pub mod dc;
pub mod elements;
pub mod linear;
mod nodemap;
pub mod sparse_map;
pub mod sweep;
pub mod transient;

pub use assemble::{BjtInstance, BuildError, MosInstance, SizedCircuit};
pub use dc::{solve_dc, solve_dc_with, DcError, DcOptions, OpPoint};
pub use elements::LinElement;
pub use linear::{LinearSystem, OutputSelector};
pub use nodemap::NodeMap;
pub use sparse_map::SparseStampMap;
pub use sweep::{dc_sweep, SweepPoint};
pub use transient::{step_response, TranOptions, Waveforms};
