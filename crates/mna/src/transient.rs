//! Nonlinear transient analysis (backward-Euler companion models).
//!
//! The paper sidesteps transient simulation inside the synthesis loop —
//! "measuring slew rate would require a transient simulation, which is
//! not straightforward with AWE" — and instead uses designer-supplied
//! expressions like `SR = I/(2(Cl+Cd))`. This module provides the real
//! thing on the verification side, so those expression estimates can be
//! *checked* against an actual large-signal step response
//! (see `astrx-oblx`'s `verify::transient_slew`).
//!
//! Integration is backward Euler with per-step Newton iteration;
//! device capacitances use the SPICE2-style incremental (Meyer)
//! treatment: evaluated at the previous solution and stamped as linear
//! companion conductances for the step.

use crate::assemble::SizedCircuit;
use crate::dc::{linearize_at, solve_dc_with, DcError, DcOptions};
use crate::elements::LinElement;
use oblx_linalg::{Lu, Mat};

/// Options for a transient run.
#[derive(Debug, Clone, Copy)]
pub struct TranOptions {
    /// Time step (s).
    pub dt: f64,
    /// Stop time (s).
    pub t_stop: f64,
    /// Newton iterations per step.
    pub max_iters: usize,
    /// Voltage convergence tolerance (V).
    pub vtol: f64,
    /// Minimum conductance to ground at device nodes (S).
    pub gmin: f64,
}

impl Default for TranOptions {
    fn default() -> Self {
        TranOptions {
            dt: 1.0e-9,
            t_stop: 200.0e-9,
            max_iters: 40,
            vtol: 1e-7,
            gmin: 1e-12,
        }
    }
}

/// A recorded transient waveform set.
#[derive(Debug, Clone)]
pub struct Waveforms {
    /// Sample times (s).
    pub t: Vec<f64>,
    /// Node-voltage samples, one inner vector per time point, indexed
    /// like the circuit's [`crate::NodeMap`].
    pub v: Vec<Vec<f64>>,
}

impl Waveforms {
    /// The waveform of one node index as `(t, v)` pairs.
    pub fn node(&self, idx: usize) -> Vec<(f64, f64)> {
        self.t
            .iter()
            .zip(self.v.iter())
            .map(|(&t, row)| (t, row[idx]))
            .collect()
    }

    /// Maximum |dv/dt| (V/s) observed on a node — the classic slew-rate
    /// readout of a step response.
    ///
    /// The derivative is taken over a short window (3 samples) to
    /// reject single-step numerical kinks.
    pub fn max_slew(&self, idx: usize) -> f64 {
        let w = self.node(idx);
        let mut best = 0.0f64;
        for win in w.windows(3) {
            let dt = win[2].0 - win[0].0;
            if dt > 0.0 {
                best = best.max(((win[2].1 - win[0].1) / dt).abs());
            }
        }
        best
    }

    /// Final value of a node (for settling checks).
    pub fn final_value(&self, idx: usize) -> Option<f64> {
        self.v.last().map(|row| row[idx])
    }
}

/// Runs a **step-response transient**: the named voltage source's dc
/// value steps by `delta` volts at `t = 0`, from the circuit's solved
/// operating point.
///
/// # Errors
///
/// [`DcError`] when the initial operating point cannot be solved or a
/// time step fails to converge (reported as
/// [`DcError::NoConvergence`]).
pub fn step_response(
    circuit: &SizedCircuit,
    source: &str,
    delta: f64,
    opts: &TranOptions,
) -> Result<Waveforms, DcError> {
    // Initial condition: dc solve of the unstepped circuit.
    let dc_opts = DcOptions {
        abstol_i: 1e-8,
        max_iters: 300,
        ..DcOptions::default()
    };
    let op = solve_dc_with(circuit, &dc_opts, None)?;
    let n = circuit.nodes.len();
    let dim = circuit.dim();
    let mut x = vec![0.0; dim];
    x[..n].copy_from_slice(&op.v);
    x[n..].copy_from_slice(&op.i_branch);

    // Stepped circuit: clone with the source's dc bumped.
    let mut stepped = circuit.clone();
    let mut found = false;
    for (el, name) in stepped.linear.iter_mut().zip(stepped.linear_names.iter()) {
        if name == source {
            if let LinElement::Vsource { dc, .. } = el {
                *dc += delta;
                found = true;
            }
        }
    }
    if !found {
        // An unknown source is a structural error; surface it as a
        // singular system rather than silently simulating nothing.
        return Err(DcError::Singular);
    }

    let steps = (opts.t_stop / opts.dt).ceil() as usize;
    let mut out = Waveforms {
        t: Vec::with_capacity(steps + 1),
        v: Vec::with_capacity(steps + 1),
    };
    out.t.push(0.0);
    out.v.push(x[..n].to_vec());

    for step in 1..=steps {
        let t = step as f64 * opts.dt;
        let x_prev = x.clone();
        // Newton iterations for this time point.
        let mut converged = false;
        for _ in 0..opts.max_iters {
            let (mut jac, mut f) = linearize_at(&stepped, &x, 1.0, opts.gmin);
            stamp_caps_be(&stepped, &x, &x_prev, opts.dt, &mut jac, &mut f);
            let lu = Lu::factor(jac).map_err(|_| DcError::Singular)?;
            let rhs: Vec<f64> = f.iter().map(|v| -v).collect();
            let dx = lu.solve(&rhs);
            let mut max_dv = 0.0f64;
            for (xi, di) in x.iter_mut().zip(dx.iter()) {
                let d = di.clamp(-1.0, 1.0);
                *xi += d;
                max_dv = max_dv.max(d.abs());
            }
            if max_dv < opts.vtol {
                converged = true;
                break;
            }
        }
        if !converged {
            return Err(DcError::NoConvergence { residual: t });
        }
        out.t.push(t);
        out.v.push(x[..n].to_vec());
    }
    Ok(out)
}

/// Backward-Euler companion stamps for every capacitance: linear
/// capacitors exactly, device capacitances incrementally (evaluated at
/// the current iterate).
fn stamp_caps_be(
    circuit: &SizedCircuit,
    x: &[f64],
    x_prev: &[f64],
    dt: f64,
    jac: &mut Mat<f64>,
    f: &mut [f64],
) {
    let geq = 1.0 / dt;
    let mut two_terminal = |p: Option<usize>, m: Option<usize>, c: f64| {
        if c <= 0.0 {
            return;
        }
        let g = c * geq;
        let vp = p.map_or(0.0, |i| x[i]);
        let vm = m.map_or(0.0, |i| x[i]);
        let vp0 = p.map_or(0.0, |i| x_prev[i]);
        let vm0 = m.map_or(0.0, |i| x_prev[i]);
        // i = C/h · ((vp−vm) − (vp0−vm0)), flowing p → m.
        let i = g * ((vp - vm) - (vp0 - vm0));
        if let Some(pi) = p {
            f[pi] += i;
            jac.add_at(pi, pi, g);
        }
        if let Some(mi) = m {
            f[mi] -= i;
            jac.add_at(mi, mi, g);
        }
        if let (Some(pi), Some(mi)) = (p, m) {
            jac.add_at(pi, mi, -g);
            jac.add_at(mi, pi, -g);
        }
    };

    for el in &circuit.linear {
        if let LinElement::Capacitor { p, m, c } = *el {
            two_terminal(p, m, c);
        }
    }
    let volt = |node: Option<usize>| node.map_or(0.0, |i| x[i]);
    for mdev in &circuit.mosfets {
        let op = mdev.model.op(
            mdev.w,
            mdev.l,
            volt(mdev.d),
            volt(mdev.g),
            volt(mdev.s),
            volt(mdev.b),
        );
        two_terminal(mdev.g, mdev.s, op.caps.cgs);
        two_terminal(mdev.g, mdev.d, op.caps.cgd);
        two_terminal(mdev.g, mdev.b, op.caps.cgb);
        two_terminal(mdev.b, mdev.d, op.caps.cbd);
        two_terminal(mdev.b, mdev.s, op.caps.cbs);
    }
    for q in &circuit.bjts {
        let op = q.model.op(q.area, volt(q.c), volt(q.b), volt(q.e));
        two_terminal(q.b, q.e, op.cpi);
        two_terminal(q.b, q.c, op.cmu);
    }
    for d in &circuit.diodes {
        let op = d.model.op(d.area, volt(d.a) - volt(d.k));
        two_terminal(d.a, d.k, op.cd);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oblx_devices::process::ProcessDeck;
    use oblx_devices::ModelLibrary;
    use oblx_netlist::parse_problem;
    use std::collections::HashMap;

    fn circuit(src: &str, deck: Option<ProcessDeck>) -> SizedCircuit {
        let p = parse_problem(src).unwrap();
        let mut cards = p.models.clone();
        if let Some(d) = deck {
            cards.extend(d.cards());
        }
        let lib = ModelLibrary::from_cards(&cards).unwrap();
        let flat = p.jigs[0].netlist.flatten(&p.subckts).unwrap();
        SizedCircuit::build(&flat, &HashMap::new(), &lib).unwrap()
    }

    #[test]
    fn rc_step_response_is_exponential() {
        // R = 1k, C = 1n → τ = 1 µs. Step 0→1 V.
        let ckt = circuit(
            ".jig j\nvin in 0 0\nr1 in out 1k\nc1 out 0 1n\n.endjig\n",
            None,
        );
        let w = step_response(
            &ckt,
            "vin",
            1.0,
            &TranOptions {
                dt: 20e-9,
                t_stop: 10e-6,
                ..TranOptions::default()
            },
        )
        .unwrap();
        let out = ckt.nodes.get("out").unwrap();
        // At t = τ, v ≈ 1 − e⁻¹ = 0.632 (BE is first order: ~2% for
        // dt = τ/50).
        let tau = 1e-6;
        let (_, v_at_tau) = w
            .node(out)
            .into_iter()
            .min_by(|a, b| (a.0 - tau).abs().partial_cmp(&(b.0 - tau).abs()).unwrap())
            .unwrap();
        assert!(
            (v_at_tau - 0.632).abs() < 0.02,
            "v(τ) = {v_at_tau} (expected ≈ 0.632)"
        );
        // Settles to 1 V (10τ ⇒ e⁻¹⁰ residue).
        assert!((w.final_value(out).unwrap() - 1.0).abs() < 1e-3);
        // Max slew ≈ initial slope V/τ = 1e6 V/s (BE underestimates
        // slightly).
        let slew = w.max_slew(out);
        assert!(slew > 0.6e6 && slew < 1.2e6, "slew = {slew}");
    }

    #[test]
    fn current_limited_ramp_measures_slew() {
        // An NMOS current sink discharging a capacitor: after the gate
        // step, the output ramps at I/C — the textbook slew situation.
        let src = "\
.jig j
vdd vdd 0 5
vg g 0 0
m1 out g 0 0 nmos w=100u l=2u
r1 vdd out 100k
c1 out 0 10p
.endjig
";
        let ckt = circuit(src, Some(ProcessDeck::C2Level1));
        // Gate step 0 → 2 V turns the sink on hard.
        let w = step_response(
            &ckt,
            "vg",
            2.0,
            &TranOptions {
                dt: 2e-9,
                t_stop: 400e-9,
                ..TranOptions::default()
            },
        )
        .unwrap();
        let out = ckt.nodes.get("out").unwrap();
        let slew = w.max_slew(out);
        // The device at vgs = 2, vds ≈ 5 carries I = ½·kp·(W/L)·vov²
        // ≈ 0.5·5.2e-5·50·1.56²·1.15 ≈ 3.6 mA → slew ≈ 3.6e8 V/s, but
        // limited by the cap discharge nonlinearity; expect the right
        // order of magnitude.
        assert!(
            slew > 5e7 && slew < 1e9,
            "slew = {slew:.3e} (expected ~1e8 V/s scale)"
        );
        // Output must fall toward the triode floor.
        assert!(w.final_value(out).unwrap() < 1.0);
    }

    #[test]
    fn unknown_source_is_error() {
        let ckt = circuit(".jig j\nvin in 0 0\nr1 in 0 1k\n.endjig\n", None);
        assert!(step_response(&ckt, "nosuch", 1.0, &TranOptions::default()).is_err());
    }

    #[test]
    fn zero_step_stays_at_op() {
        let ckt = circuit(
            ".jig j\nvin in 0 2\nr1 in out 1k\nc1 out 0 1n\nr2 out 0 1k\n.endjig\n",
            None,
        );
        let w = step_response(
            &ckt,
            "vin",
            0.0,
            &TranOptions {
                dt: 50e-9,
                t_stop: 2e-6,
                ..TranOptions::default()
            },
        )
        .unwrap();
        let out = ckt.nodes.get("out").unwrap();
        for (_, v) in w.node(out) {
            assert!((v - 1.0).abs() < 1e-6, "must hold the op point: {v}");
        }
    }
}
