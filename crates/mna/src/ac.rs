//! Reference ac measurements: the "Simulation" columns of Tables 2/3.
//!
//! These routines measure performance by direct per-frequency complex
//! solves on a [`LinearSystem`] — the slow-but-trusted path that AWE's
//! reduced-order models are verified against.

use crate::linear::{LinearSystem, OutputSelector};
use oblx_linalg::SingularMatrixError;

/// dc gain `|H(0)|` of the transfer function.
///
/// # Errors
///
/// Propagates [`SingularMatrixError`] from the underlying solve.
pub fn dc_gain(
    sys: &LinearSystem,
    source: &str,
    out: OutputSelector,
) -> Result<f64, SingularMatrixError> {
    Ok(sys.transfer(source, out, 0.0)?.norm())
}

/// Gain magnitude at frequency `f` (Hz).
///
/// # Errors
///
/// Propagates [`SingularMatrixError`].
pub fn gain_at(
    sys: &LinearSystem,
    source: &str,
    out: OutputSelector,
    f: f64,
) -> Result<f64, SingularMatrixError> {
    Ok(sys
        .transfer(source, out, 2.0 * std::f64::consts::PI * f)?
        .norm())
}

/// Unity-gain frequency (Hz): the lowest frequency where `|H|` crosses 1,
/// found by decade scan plus bisection. Returns 0 when the dc gain is
/// already below 1, and `f_max` when no crossing is found below it.
///
/// # Errors
///
/// Propagates [`SingularMatrixError`].
pub fn unity_gain_frequency(
    sys: &LinearSystem,
    source: &str,
    out: OutputSelector,
) -> Result<f64, SingularMatrixError> {
    const F_MIN: f64 = 1.0e-1;
    const F_MAX: f64 = 1.0e12;
    let mag = |f: f64| -> Result<f64, SingularMatrixError> { gain_at(sys, source, out, f) };
    if mag(F_MIN)? <= 1.0 {
        return Ok(0.0);
    }
    // Decade scan for a bracketing interval.
    let mut lo = F_MIN;
    let mut hi = F_MIN;
    let mut found = false;
    while hi < F_MAX {
        hi *= 10.0;
        if mag(hi)? <= 1.0 {
            found = true;
            break;
        }
        lo = hi;
    }
    if !found {
        return Ok(F_MAX);
    }
    // Bisection in log-frequency.
    for _ in 0..60 {
        let mid = (lo * hi).sqrt();
        if mag(mid)? > 1.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok((lo * hi).sqrt())
}

/// Phase margin in degrees: `180° − (phase lag accumulated from dc to
/// the unity-gain crossing)`, matching the AWE-side definition (lag is
/// measured relative to the dc phase, so inverting probes report the
/// same margin as non-inverted ones).
///
/// Returns 90° by convention for single-pole-like responses whose unity
/// crossing was not found (`ugf == 0` or scan exhausted).
///
/// # Errors
///
/// Propagates [`SingularMatrixError`].
pub fn phase_margin(
    sys: &LinearSystem,
    source: &str,
    out: OutputSelector,
) -> Result<f64, SingularMatrixError> {
    let f = unity_gain_frequency(sys, source, out)?;
    if f <= 0.0 || f >= 1.0e12 {
        return Ok(90.0);
    }
    let h0 = sys.transfer(source, out, 0.0)?;
    let h = sys.transfer(source, out, 2.0 * std::f64::consts::PI * f)?;
    let mut d = (h.arg() - h0.arg()).to_degrees();
    while d > 180.0 {
        d -= 360.0;
    }
    while d < -180.0 {
        d += 360.0;
    }
    Ok(180.0 - d.abs())
}

/// Samples `|H|` and phase over a log-spaced grid — a Bode sweep for
/// reports and tests. Returns `(f, |H|, phase_deg)` triples.
///
/// # Errors
///
/// Propagates [`SingularMatrixError`].
///
/// # Panics
///
/// Panics if `points < 2` or the frequency bounds are not positive and
/// increasing.
pub fn bode(
    sys: &LinearSystem,
    source: &str,
    out: OutputSelector,
    f_start: f64,
    f_stop: f64,
    points: usize,
) -> Result<Vec<(f64, f64, f64)>, SingularMatrixError> {
    assert!(points >= 2, "need at least 2 sweep points");
    assert!(f_start > 0.0 && f_stop > f_start, "bad frequency bounds");
    let lstart = f_start.ln();
    let lstep = (f_stop / f_start).ln() / (points - 1) as f64;
    let mut out_rows = Vec::with_capacity(points);
    for i in 0..points {
        let f = (lstart + lstep * i as f64).exp();
        let h = sys.transfer(source, out, 2.0 * std::f64::consts::PI * f)?;
        out_rows.push((f, h.norm(), h.arg().to_degrees()));
    }
    Ok(out_rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assemble::SizedCircuit;
    use crate::dc::solve_dc;
    use oblx_devices::ModelLibrary;
    use oblx_netlist::parse_problem;
    use std::collections::HashMap;

    fn sys(src: &str) -> LinearSystem {
        let p = parse_problem(src).unwrap();
        let flat = p.jigs[0].netlist.flatten(&p.subckts).unwrap();
        let ckt = SizedCircuit::build(&flat, &HashMap::new(), &ModelLibrary::new()).unwrap();
        let op = solve_dc(&ckt).unwrap();
        LinearSystem::from_op(&ckt, &op)
    }

    /// A behavioural two-pole amplifier: gain 1000, poles at 1 kHz and
    /// 1 MHz (gm/C stages) — easy to hand-verify.
    fn two_pole() -> LinearSystem {
        sys("\
.jig j
vin in 0 0 ac 1
g1 0 x in 0 1m
r1 x 0 1meg
c1 x 0 159.155p
g2 0 out x 0 1m
r2 out 0 1k
c2 out 0 159.155p
.endjig
")
    }

    #[test]
    fn dc_gain_two_stage() {
        let s = two_pole();
        let out = s.output_selector("out", None).unwrap();
        // A0 = (1m · 1M) · (1m · 1k) = 1000 · 1 = 1000.
        let a0 = dc_gain(&s, "vin", out).unwrap();
        assert!((a0 - 1000.0).abs() / 1000.0 < 1e-6, "a0 = {a0}");
    }

    #[test]
    fn ugf_near_gbw() {
        let s = two_pole();
        let out = s.output_selector("out", None).unwrap();
        let f = unity_gain_frequency(&s, "vin", out).unwrap();
        // First pole 1 kHz, gain 1000 ⇒ GBW ≈ 1 MHz; second pole at
        // 1 MHz pulls the crossing slightly below.
        assert!(f > 5e5 && f < 1.1e6, "ugf = {f}");
    }

    #[test]
    fn phase_margin_two_pole_is_about_52_degrees() {
        let s = two_pole();
        let out = s.output_selector("out", None).unwrap();
        let pm = phase_margin(&s, "vin", out).unwrap();
        // Crossing right at the second pole: PM ≈ 52° for this spacing.
        assert!(pm > 40.0 && pm < 65.0, "pm = {pm}");
    }

    #[test]
    fn passive_network_has_no_crossing() {
        let s = sys(".jig j\nvin in 0 0 ac 1\nr1 in out 1k\nc1 out 0 1n\n.endjig\n");
        let out = s.output_selector("out", None).unwrap();
        assert_eq!(unity_gain_frequency(&s, "vin", out).unwrap(), 0.0);
        assert_eq!(phase_margin(&s, "vin", out).unwrap(), 90.0);
    }

    #[test]
    fn bode_sweep_monotone_rolloff() {
        let s = sys(".jig j\nvin in 0 0 ac 1\nr1 in out 1k\nc1 out 0 1u\n.endjig\n");
        let out = s.output_selector("out", None).unwrap();
        let rows = bode(&s, "vin", out, 1.0, 1.0e6, 25).unwrap();
        assert_eq!(rows.len(), 25);
        for pair in rows.windows(2) {
            assert!(pair[1].1 <= pair[0].1 + 1e-12, "low-pass must roll off");
        }
        // Phase heads toward −90°.
        assert!(rows.last().unwrap().2 < -85.0);
    }
}
