//! Concrete (value-resolved) linear elements and their MNA stamps.

use oblx_linalg::Mat;

/// A node index: `None` is ground.
pub type Node = Option<usize>;

/// A value-resolved linear element with interned node indices.
///
/// Branch-equation elements (`Vsource`, `Vcvs`, `Inductor`) carry the
/// index of their branch-current unknown, assigned during assembly.
#[derive(Debug, Clone, PartialEq)]
pub enum LinElement {
    /// Resistor with conductance `g` between `p` and `m`.
    Resistor {
        /// Positive node.
        p: Node,
        /// Negative node.
        m: Node,
        /// Conductance (S).
        g: f64,
    },
    /// Capacitor `c` between `p` and `m`.
    Capacitor {
        /// Positive node.
        p: Node,
        /// Negative node.
        m: Node,
        /// Capacitance (F).
        c: f64,
    },
    /// Inductor `l` between `p` and `m`; a branch element.
    Inductor {
        /// Positive node.
        p: Node,
        /// Negative node.
        m: Node,
        /// Inductance (H).
        l: f64,
        /// Branch-current row/column.
        branch: usize,
    },
    /// Independent voltage source; a branch element.
    Vsource {
        /// Positive node.
        p: Node,
        /// Negative node.
        m: Node,
        /// dc value (V).
        dc: f64,
        /// ac magnitude (V).
        ac: f64,
        /// Branch-current row/column.
        branch: usize,
    },
    /// Independent current source flowing `p → m` through the source.
    Isource {
        /// Positive node.
        p: Node,
        /// Negative node.
        m: Node,
        /// dc value (A).
        dc: f64,
        /// ac magnitude (A).
        ac: f64,
    },
    /// Voltage-controlled voltage source; a branch element.
    Vcvs {
        /// Positive output node.
        p: Node,
        /// Negative output node.
        m: Node,
        /// Positive controlling node.
        cp: Node,
        /// Negative controlling node.
        cm: Node,
        /// Voltage gain.
        gain: f64,
        /// Branch-current row/column.
        branch: usize,
    },
    /// Voltage-controlled current source: `gm·v(cp,cm)` into `p → m`.
    Vccs {
        /// Positive output node.
        p: Node,
        /// Negative output node.
        m: Node,
        /// Positive controlling node.
        cp: Node,
        /// Negative controlling node.
        cm: Node,
        /// Transconductance (S).
        gm: f64,
    },
}

/// A destination for MNA matrix stamps.
///
/// The stamping code is generic over the sink so the *same* write
/// sequence can target a dense [`Mat`], a pattern recorder (building
/// the structural nonzero list for sparse symbolic analysis), or a
/// slot writer that accumulates straight into sparse value storage.
/// Because the sequence of `(r, c)` writes depends only on circuit
/// structure — never on element values — a recorded pattern replays
/// exactly, and per-cell accumulation order (hence floating-point
/// rounding) is identical across all sinks.
pub trait Stamper {
    /// Accumulates `v` at `(r, c)`.
    fn add(&mut self, r: usize, c: usize, v: f64);
}

impl Stamper for Mat<f64> {
    #[inline]
    fn add(&mut self, r: usize, c: usize, v: f64) {
        self.add_at(r, c, v);
    }
}

/// Adds `v` at `(r, c)` when both indices are non-ground.
#[inline]
pub fn stamp<S: Stamper>(mat: &mut S, r: Node, c: Node, v: f64) {
    if let (Some(r), Some(c)) = (r, c) {
        mat.add(r, c, v);
    }
}

/// Adds `v` at vector position `r` when non-ground.
#[inline]
pub fn stamp_vec(vec: &mut [f64], r: Node, v: f64) {
    if let Some(r) = r {
        vec[r] += v;
    }
}

/// Stamps a conductance `g` between `p` and `m` (two-terminal pattern).
pub fn stamp_conductance<S: Stamper>(mat: &mut S, p: Node, m: Node, g: f64) {
    stamp(mat, p, p, g);
    stamp(mat, m, m, g);
    stamp(mat, p, m, -g);
    stamp(mat, m, p, -g);
}

/// Stamps a VCCS `gm·v(cp,cm)` flowing `p → m`.
pub fn stamp_vccs<S: Stamper>(mat: &mut S, p: Node, m: Node, cp: Node, cm: Node, gm: f64) {
    stamp(mat, p, cp, gm);
    stamp(mat, p, cm, -gm);
    stamp(mat, m, cp, -gm);
    stamp(mat, m, cm, gm);
}

impl LinElement {
    /// Stamps this element's **conductance-like** (frequency-independent)
    /// contributions into `g`, and its source contributions into the
    /// dc right-hand side `rhs` scaled by `src_scale` (used for source
    /// stepping).
    ///
    /// Branch rows enforce their defining equations; `n` is the number
    /// of node unknowns (branch `k` lives at row/column `n + k`).
    pub fn stamp_dc<S: Stamper>(&self, g: &mut S, rhs: &mut [f64], n: usize, src_scale: f64) {
        match *self {
            LinElement::Resistor { p, m, g: cond } => stamp_conductance(g, p, m, cond),
            LinElement::Capacitor { .. } => {} // open at dc
            LinElement::Inductor { p, m, branch, .. } => {
                // dc: a 0 V source — short circuit through the branch.
                let b = Some(n + branch);
                stamp(g, p, b, 1.0);
                stamp(g, m, b, -1.0);
                stamp(g, b, p, 1.0);
                stamp(g, b, m, -1.0);
            }
            LinElement::Vsource {
                p, m, dc, branch, ..
            } => {
                let b = Some(n + branch);
                stamp(g, p, b, 1.0);
                stamp(g, m, b, -1.0);
                stamp(g, b, p, 1.0);
                stamp(g, b, m, -1.0);
                stamp_vec(rhs, b, dc * src_scale);
            }
            LinElement::Isource { p, m, dc, .. } => {
                // Current flows out of p into m: contributes −dc to KCL
                // at p (current leaving) — as a source on the rhs it
                // *enters* m.
                stamp_vec(rhs, p, -dc * src_scale);
                stamp_vec(rhs, m, dc * src_scale);
            }
            LinElement::Vcvs {
                p,
                m,
                cp,
                cm,
                gain,
                branch,
            } => {
                let b = Some(n + branch);
                stamp(g, p, b, 1.0);
                stamp(g, m, b, -1.0);
                stamp(g, b, p, 1.0);
                stamp(g, b, m, -1.0);
                stamp(g, b, cp, -gain);
                stamp(g, b, cm, gain);
            }
            LinElement::Vccs { p, m, cp, cm, gm } => stamp_vccs(g, p, m, cp, cm, gm),
        }
    }

    /// Stamps this element's **susceptance** (frequency-proportional)
    /// contributions into `c`: capacitor currents `s·C·v` and the
    /// inductor branch `−s·L·i` term.
    pub fn stamp_ac<S: Stamper>(&self, c: &mut S, n: usize) {
        match *self {
            LinElement::Capacitor { p, m, c: cap } => stamp_conductance(c, p, m, cap),
            LinElement::Inductor { l, branch, .. } => {
                let b = Some(n + branch);
                stamp(c, b, b, -l);
            }
            _ => {}
        }
    }

    /// Stamps the ac stimulus of independent sources into `b`.
    pub fn stamp_ac_rhs(&self, b: &mut [f64], n: usize) {
        match *self {
            LinElement::Vsource { ac, branch, .. } if ac != 0.0 => {
                stamp_vec(b, Some(n + branch), ac);
            }
            LinElement::Isource { p, m, ac, .. } if ac != 0.0 => {
                stamp_vec(b, p, -ac);
                stamp_vec(b, m, ac);
            }
            _ => {}
        }
    }

    /// The branch index, for branch elements.
    pub fn branch(&self) -> Option<usize> {
        match *self {
            LinElement::Inductor { branch, .. }
            | LinElement::Vsource { branch, .. }
            | LinElement::Vcvs { branch, .. } => Some(branch),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oblx_linalg::Lu;

    #[test]
    fn divider_via_stamps() {
        // v1 in 0 6; r1 in out 2 (g=0.5); r2 out 0 1 (g=1)
        let n = 2; // in=0, out=1
        let mut g = Mat::zeros(3, 3);
        let mut rhs = vec![0.0; 3];
        LinElement::Resistor {
            p: Some(0),
            m: Some(1),
            g: 0.5,
        }
        .stamp_dc(&mut g, &mut rhs, n, 1.0);
        LinElement::Resistor {
            p: Some(1),
            m: None,
            g: 1.0,
        }
        .stamp_dc(&mut g, &mut rhs, n, 1.0);
        LinElement::Vsource {
            p: Some(0),
            m: None,
            dc: 6.0,
            ac: 0.0,
            branch: 0,
        }
        .stamp_dc(&mut g, &mut rhs, n, 1.0);
        let x = Lu::factor(g).unwrap().solve(&rhs);
        assert!((x[0] - 6.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
        // Source branch current: 6 V across 3 Ω total = 2 A out of +.
        assert!((x[2] + 2.0).abs() < 1e-12);
    }

    #[test]
    fn isource_direction() {
        // i1 0 out 1A pushes current INTO `out` (flows 0→out through src).
        let n = 1;
        let mut g = Mat::zeros(1, 1);
        let mut rhs = vec![0.0; 1];
        LinElement::Resistor {
            p: Some(0),
            m: None,
            g: 0.5,
        }
        .stamp_dc(&mut g, &mut rhs, n, 1.0);
        LinElement::Isource {
            p: None,
            m: Some(0),
            dc: 1.0,
            ac: 0.0,
        }
        .stamp_dc(&mut g, &mut rhs, n, 1.0);
        let x = Lu::factor(g).unwrap().solve(&rhs);
        assert!((x[0] - 2.0).abs() < 1e-12); // 1 A into 2 Ω
    }

    #[test]
    fn vccs_polarity() {
        // gm·v(c) from node out to ground, v(c) set by source: i = gm·vc
        // out of `out`… check sign by solving.
        let n = 2; // c=0, out=1
        let mut g = Mat::zeros(3, 3);
        let mut rhs = vec![0.0; 3];
        LinElement::Vsource {
            p: Some(0),
            m: None,
            dc: 1.0,
            ac: 0.0,
            branch: 0,
        }
        .stamp_dc(&mut g, &mut rhs, n, 1.0);
        LinElement::Resistor {
            p: Some(1),
            m: None,
            g: 1.0,
        }
        .stamp_dc(&mut g, &mut rhs, n, 1.0);
        // i = gm·v(c,0) flowing out→gnd ⇒ v(out) = −gm·R·v(c)… with p=out:
        LinElement::Vccs {
            p: Some(1),
            m: None,
            cp: Some(0),
            cm: None,
            gm: 2.0,
        }
        .stamp_dc(&mut g, &mut rhs, n, 1.0);
        let x = Lu::factor(g).unwrap().solve(&rhs);
        // KCL at out: v_out·1 + 2·v_c = 0 ⇒ v_out = −2.
        assert!((x[1] + 2.0).abs() < 1e-12);
    }

    #[test]
    fn capacitor_open_at_dc_stamped_in_c() {
        let mut g = Mat::zeros(1, 1);
        let mut c = Mat::zeros(1, 1);
        let mut rhs = vec![0.0; 1];
        let cap = LinElement::Capacitor {
            p: Some(0),
            m: None,
            c: 1e-12,
        };
        cap.stamp_dc(&mut g, &mut rhs, 1, 1.0);
        cap.stamp_ac(&mut c, 1);
        assert_eq!(g[(0, 0)], 0.0);
        assert_eq!(c[(0, 0)], 1e-12);
    }

    #[test]
    fn vcvs_enforces_gain() {
        // e1 out 0 in 0 gain=3; vin in 0 2 ⇒ v(out) = 6
        let n = 2; // in=0, out=1
        let mut g = Mat::zeros(4, 4);
        let mut rhs = vec![0.0; 4];
        LinElement::Vsource {
            p: Some(0),
            m: None,
            dc: 2.0,
            ac: 0.0,
            branch: 0,
        }
        .stamp_dc(&mut g, &mut rhs, n, 1.0);
        LinElement::Vcvs {
            p: Some(1),
            m: None,
            cp: Some(0),
            cm: None,
            gain: 3.0,
            branch: 1,
        }
        .stamp_dc(&mut g, &mut rhs, n, 1.0);
        let x = Lu::factor(g).unwrap().solve(&rhs);
        assert!((x[1] - 6.0).abs() < 1e-12);
    }
}
