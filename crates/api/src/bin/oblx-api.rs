//! `oblx-api` — the synthesis-as-a-service daemon.
//!
//! ```text
//! oblx-api serve --dir SPOOL [--addr HOST:PORT] [--threads N]
//!                [--pool-workers N | --no-pool]
//!                [--rate R] [--burst B] [--admission N]
//! ```
//!
//! `serve` binds the HTTP edge (default `127.0.0.1:8080`; port 0 picks
//! a free port) and, unless `--no-pool`, runs an in-process `oblxd`
//! worker pool over the same spool so a single process accepts decks
//! over HTTP *and* synthesizes them. The bound address is printed to
//! stdout (`listening on HOST:PORT`) before requests are served, so
//! wrappers scripting a port-0 server can scrape it. SIGTERM/SIGINT
//! drain gracefully: the edge stops accepting, in-flight requests
//! finish, in-flight seeds checkpoint, and the process exits 0.

use oblx_api::server::{Server, ServerOptions};
use oblx_runtime::events::EventLog;
use oblx_runtime::pool::{self, PoolOptions};
use oblx_runtime::spool::Spool;
use std::io::Write as _;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  oblx-api serve --dir SPOOL [--addr HOST:PORT] [--threads N] \
         [--pool-workers N | --no-pool] [--rate R] [--burst B] [--admission N] \
         [--checkpoint-interval N]"
    );
    ExitCode::from(2)
}

fn opt<'a>(rest: &'a [&String], name: &str) -> Option<&'a str> {
    rest.iter()
        .position(|a| a.as_str() == name)
        .and_then(|i| rest.get(i + 1))
        .map(|s| s.as_str())
}

fn flag(rest: &[&String], name: &str) -> bool {
    rest.iter().any(|a| a.as_str() == name)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    if it.next().map(String::as_str) != Some("serve") {
        return usage();
    }
    let rest: Vec<&String> = it.collect();
    let Some(dir) = opt(&rest, "--dir") else {
        eprintln!("error: --dir SPOOL is required");
        return usage();
    };
    let spool = match Spool::open(dir) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot open spool `{dir}`: {e}");
            return ExitCode::FAILURE;
        }
    };
    oblx_telemetry::set_enabled(true);

    let server_opts = ServerOptions {
        addr: opt(&rest, "--addr").unwrap_or("127.0.0.1:8080").to_string(),
        threads: opt(&rest, "--threads")
            .and_then(|s| s.parse().ok())
            .unwrap_or(4),
        admission_capacity: opt(&rest, "--admission")
            .and_then(|s| s.parse().ok())
            .unwrap_or(64),
        quota_rate: opt(&rest, "--rate")
            .and_then(|s| s.parse().ok())
            .unwrap_or(50.0),
        quota_burst: opt(&rest, "--burst")
            .and_then(|s| s.parse().ok())
            .unwrap_or(100.0),
        ..ServerOptions::default()
    };

    // One flag fans out to everything: the signal handler raises the
    // process-wide static, the main loop mirrors it into the Arc the
    // server and pool poll.
    let signal_flag = oblx_runtime::signal::install_shutdown_handler();
    let shutdown = Arc::new(AtomicBool::new(false));

    let server = match Server::start(spool, &server_opts, Arc::clone(&shutdown)) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot bind `{}`: {e}", server_opts.addr);
            return ExitCode::FAILURE;
        }
    };
    println!("listening on {}", server.addr());
    let _ = std::io::stdout().flush();

    let pool_thread = if flag(&rest, "--no-pool") {
        None
    } else {
        let pool_spool = match Spool::open(dir) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: cannot open spool `{dir}`: {e}");
                return ExitCode::FAILURE;
            }
        };
        // Same startup hygiene as `oblxd run`: quarantine, then recover.
        for id in pool_spool.quarantine_corrupt() {
            EventLog::open(&pool_spool, &id).emit("job_corrupt", &[]);
            oblx_telemetry::incr(oblx_telemetry::Counter::JobCorrupt);
            eprintln!("quarantined corrupt spool entry {id}");
        }
        for id in pool_spool.recover() {
            EventLog::open(&pool_spool, &id).emit("recovered", &[]);
            eprintln!("recovered orphaned job {id}");
        }
        let pool_opts = PoolOptions {
            workers: opt(&rest, "--pool-workers")
                .and_then(|s| s.parse().ok())
                .unwrap_or(0),
            checkpoint_every: opt(&rest, "--checkpoint-interval")
                .and_then(|s| s.parse().ok())
                .unwrap_or(2_000),
            drain: false,
            ..PoolOptions::default()
        };
        if pool_opts.checkpoint_every == 0 {
            eprintln!("error: --checkpoint-interval must be positive");
            return ExitCode::from(2);
        }
        let pool_shutdown = Arc::clone(&shutdown);
        Some(std::thread::spawn(move || {
            pool::run(&pool_spool, &pool_opts, &pool_shutdown)
        }))
    };

    while !signal_flag.load(Ordering::SeqCst) && !shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("shutdown: draining connections and checkpointing seeds");
    shutdown.store(true, Ordering::SeqCst);
    server.join();
    if let Some(t) = pool_thread {
        match t.join() {
            Ok(stats) => eprintln!(
                "pool: {} job(s) completed, {} failed, {} cancelled, {} seed task(s) run",
                stats.jobs_completed, stats.jobs_failed, stats.jobs_cancelled, stats.seeds_run
            ),
            Err(_) => eprintln!("pool thread panicked"),
        }
    }
    ExitCode::SUCCESS
}
