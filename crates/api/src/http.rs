//! A deliberately small HTTP/1.1 implementation: parse requests off a
//! [`TcpStream`], write responses. No pipelining, no TLS — the edge
//! sits next to its clients (CI, a lab submit script, a load balancer
//! that terminates everything fancier). Keep-alive is supported but
//! the *server* stays in charge: every response carries an explicit
//! `Connection:` header chosen by the caller, and the server bounds a
//! persistent connection with a request cap and an idle timeout so a
//! connection can never hold a worker thread hostage.
//!
//! Robustness is in the limits, not the feature set: the head (request
//! line + headers) is capped, the body is capped by the server's
//! configured maximum, and both directions run under socket timeouts
//! set by the caller, so a slow-loris client costs one worker thread
//! for at most the read timeout.

use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Cap on the request head (request line + headers). 8 KiB matches the
/// conventional default of the big servers and is ~40x what our own
/// clients send.
pub const MAX_HEAD_BYTES: usize = 8 * 1024;

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Upper-cased method token (`GET`, `POST`, `DELETE`, …).
    pub method: String,
    /// Percent-decoded-as-is path component, without the query string.
    pub path: String,
    /// Raw query string (no leading `?`; empty when absent).
    pub query: String,
    /// Headers with lower-cased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
    /// Whether the client allows the connection to persist after the
    /// response: HTTP/1.1 unless `Connection: close`, HTTP/1.0 only
    /// with an explicit `Connection: keep-alive`.
    pub keep_alive: bool,
}

impl Request {
    /// The first value of a header, by lower-case name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// The `Connection:` token a request's version + header imply.
fn wants_keep_alive(version: &str, headers: &[(String, String)]) -> bool {
    let conn = headers
        .iter()
        .find(|(k, _)| k == "connection")
        .map(|(_, v)| v.to_ascii_lowercase())
        .unwrap_or_default();
    let has = |token: &str| conn.split(',').any(|t| t.trim() == token);
    if version == "HTTP/1.0" {
        has("keep-alive")
    } else {
        !has("close")
    }
}

/// Why a request could not be read. Each maps to exactly one response
/// status so the server can answer malformed input instead of silently
/// dropping the connection.
#[derive(Debug)]
pub enum HttpError {
    /// Malformed request line/headers/body → 400.
    BadRequest(String),
    /// Head or body over the configured cap → 431 / 413.
    HeadTooLarge,
    /// Body over the configured cap → 413.
    BodyTooLarge(usize),
    /// Socket error or timeout; nothing sensible to answer.
    Io(io::Error),
}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// Reads and parses one request. `max_body` bounds the accepted
/// `Content-Length`; the caller sets socket timeouts beforehand.
///
/// # Errors
///
/// [`HttpError`] describing the malformation or the socket failure.
pub fn read_request(stream: &mut TcpStream, max_body: usize) -> Result<Request, HttpError> {
    let (head, mut leftover) = read_head(stream)?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(HttpError::BadRequest(format!(
            "malformed request line `{request_line}`"
        )));
    };
    if parts.next().is_some() || !version.starts_with("HTTP/1.") {
        return Err(HttpError::BadRequest(format!(
            "malformed request line `{request_line}`"
        )));
    }
    let mut headers = Vec::new();
    for line in lines.filter(|l| !l.is_empty()) {
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::BadRequest(format!(
                "malformed header line `{line}`"
            )));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };

    let content_length = match headers.iter().find(|(k, _)| k == "content-length") {
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| HttpError::BadRequest(format!("unparseable Content-Length `{v}`")))?,
        None => 0,
    };
    if content_length > max_body {
        return Err(HttpError::BodyTooLarge(content_length));
    }
    let mut body = std::mem::take(&mut leftover);
    if body.len() > content_length {
        return Err(HttpError::BadRequest(
            "body longer than Content-Length".into(),
        ));
    }
    let mut remaining = content_length - body.len();
    body.reserve(remaining);
    let mut chunk = [0u8; 4096];
    while remaining > 0 {
        let n = stream.read(&mut chunk[..remaining.min(4096)])?;
        if n == 0 {
            return Err(HttpError::BadRequest(format!(
                "body truncated: got {} of {content_length} bytes",
                body.len()
            )));
        }
        body.extend_from_slice(&chunk[..n]);
        remaining -= n;
    }
    Ok(Request {
        method: method.to_string(),
        path,
        query,
        keep_alive: wants_keep_alive(version, &headers),
        headers,
        body,
    })
}

/// Reads until the `\r\n\r\n` head terminator (capped at
/// [`MAX_HEAD_BYTES`]); returns the head text and any body bytes that
/// arrived in the same reads.
fn read_head(stream: &mut TcpStream) -> Result<(String, Vec<u8>), HttpError> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    loop {
        if let Some(end) = find_head_end(&buf) {
            let head = std::str::from_utf8(&buf[..end])
                .map_err(|_| HttpError::BadRequest("head is not UTF-8".into()))?
                .to_string();
            let leftover = buf[end + 4..].to_vec();
            return Ok((head, leftover));
        }
        if buf.len() >= MAX_HEAD_BYTES {
            return Err(HttpError::HeadTooLarge);
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(HttpError::BadRequest("connection closed mid-head".into()));
        }
        buf.extend_from_slice(&chunk[..n]);
    }
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// The canonical reason phrase for the handful of statuses we emit.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "",
    }
}

/// Writes a complete response (status, headers, body) and flushes.
/// The `Connection:` header states `keep_alive` explicitly, so the
/// client always knows whether the server will honor another request.
///
/// # Errors
///
/// Propagates socket write errors (the peer may already be gone).
pub fn respond(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
) -> io::Result<()> {
    let conn = if keep_alive { "keep-alive" } else { "close" };
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {conn}\r\n\r\n",
        reason(status),
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// Writes a JSON response.
///
/// # Errors
///
/// Propagates socket write errors.
pub fn respond_json(
    stream: &mut TcpStream,
    status: u16,
    body: &str,
    keep_alive: bool,
) -> io::Result<()> {
    respond(
        stream,
        status,
        "application/json",
        body.as_bytes(),
        keep_alive,
    )
}

/// A `Transfer-Encoding: chunked` response writer for the event-stream
/// endpoint: the head goes out on construction, each `write_chunk` is
/// one HTTP chunk (so the client sees whole JSONL lines as they land),
/// and `finish` writes the zero-length terminator.
pub struct ChunkedWriter<'a> {
    stream: &'a mut TcpStream,
}

impl<'a> ChunkedWriter<'a> {
    /// Starts a chunked response.
    ///
    /// # Errors
    ///
    /// Propagates socket write errors.
    pub fn start(
        stream: &'a mut TcpStream,
        status: u16,
        content_type: &str,
    ) -> io::Result<ChunkedWriter<'a>> {
        // A chunked stream runs until the job is terminal and may span
        // minutes; the connection always closes behind it rather than
        // tracking stream state across requests.
        let head = format!(
            "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n",
            reason(status)
        );
        stream.write_all(head.as_bytes())?;
        stream.flush()?;
        Ok(ChunkedWriter { stream })
    }

    /// Writes one chunk; empty input is skipped (a zero-length chunk
    /// would terminate the stream).
    ///
    /// # Errors
    ///
    /// Propagates socket write errors — the caller treats any failure
    /// as "client went away" and stops streaming.
    pub fn write_chunk(&mut self, data: &[u8]) -> io::Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        write!(self.stream, "{:x}\r\n", data.len())?;
        self.stream.write_all(data)?;
        self.stream.write_all(b"\r\n")?;
        self.stream.flush()
    }

    /// Terminates the chunked stream.
    ///
    /// # Errors
    ///
    /// Propagates socket write errors.
    pub fn finish(self) -> io::Result<()> {
        self.stream.write_all(b"0\r\n\r\n")?;
        self.stream.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    /// Runs `read_request` against raw bytes pushed through a real
    /// socket pair — the same I/O path production takes.
    fn parse_bytes(bytes: &[u8], max_body: usize) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let bytes = bytes.to_vec();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&bytes).unwrap();
        });
        let (mut conn, _) = listener.accept().unwrap();
        let req = read_request(&mut conn, max_body);
        writer.join().unwrap();
        req
    }

    #[test]
    fn parses_a_post_with_body_and_query() {
        let req = parse_bytes(
            b"POST /v1/jobs?dry=1 HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd",
            1024,
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/jobs");
        assert_eq!(req.query, "dry=1");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn rejects_oversized_bodies_without_reading_them() {
        let err =
            parse_bytes(b"POST / HTTP/1.1\r\nContent-Length: 999999\r\n\r\n", 1024).unwrap_err();
        assert!(matches!(err, HttpError::BodyTooLarge(999999)));
    }

    #[test]
    fn rejects_malformed_request_lines() {
        for raw in [
            &b"GET\r\n\r\n"[..],
            &b"GET /x SPAM/9 extra\r\n\r\n"[..],
            &b"GET /x FTP/1.0\r\n\r\n"[..],
        ] {
            assert!(matches!(
                parse_bytes(raw, 1024).unwrap_err(),
                HttpError::BadRequest(_)
            ));
        }
    }

    #[test]
    fn keep_alive_follows_version_defaults_and_connection_header() {
        let ka = |raw: &[u8]| parse_bytes(raw, 1024).unwrap().keep_alive;
        assert!(ka(b"GET / HTTP/1.1\r\n\r\n"), "1.1 defaults to keep-alive");
        assert!(!ka(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n"));
        assert!(!ka(b"GET / HTTP/1.0\r\n\r\n"), "1.0 defaults to close");
        assert!(ka(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n"));
        assert!(!ka(b"GET / HTTP/1.1\r\nConnection: Close\r\n\r\n"));
    }

    #[test]
    fn caps_the_request_head() {
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        raw.extend(std::iter::repeat_n(b'a', MAX_HEAD_BYTES + 16));
        assert!(matches!(
            parse_bytes(&raw, 1024).unwrap_err(),
            HttpError::HeadTooLarge
        ));
    }
}
