//! The hand-rolled router and the seven endpoint handlers.
//!
//! ```text
//! POST   /v1/jobs             submit a deck; edge-validated, 4xx on bad input
//! GET    /v1/jobs/:id         job state + per-seed progress
//! GET    /v1/jobs/:id/result  the persistent result record (done/ or cancelled/)
//! DELETE /v1/jobs/:id         cancel (tombstone honored by the pool)
//! GET    /v1/jobs/:id/events  chunked streaming tail of the JSONL event log
//! GET    /v1/metrics          live telemetry snapshot
//! GET    /v1/cluster          daemon membership + per-host worker state
//! ```
//!
//! Every error body has one shape — `{"error":{"kind":…,"message":…}}`
//! with `line`/`column` added for parse errors — so clients branch on
//! `kind`, not on prose.

use crate::http::{self, ChunkedWriter, Request};
use astrx_oblx::jobs::JobRequest;
use astrx_oblx::json::{ObjBuilder, Value};
use astrx_oblx::SynthesisOptions;
use oblx_runtime::events::{job_progress, EventLog};
use oblx_runtime::spool::{CancelOutcome, Spool};
use oblx_runtime::JobError;
use std::io;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Shared state every handler sees.
pub struct Ctx {
    /// The spool this edge fronts.
    pub spool: Spool,
    /// Raised to stop streaming endpoints at shutdown.
    pub shutdown: Arc<AtomicBool>,
}

/// An error body: `{"error":{"kind":…,"message":…}}`.
pub fn error_body(kind: &str, message: &str) -> String {
    ObjBuilder::new()
        .field(
            "error",
            ObjBuilder::new()
                .field("kind", kind)
                .field("message", message)
                .build(),
        )
        .build()
        .to_json()
}

/// Dispatches one request. Returns the response status (for the
/// telemetry counters) and whether the connection stays open; the
/// response itself has already been written. `keep_alive` is the
/// server's offer (client willing, caps not hit) — handlers echo it
/// except the streaming endpoint, which always closes behind itself.
///
/// # Errors
///
/// Socket-level failures only — protocol-level problems are answered
/// with a 4xx/5xx, not returned.
pub fn handle(
    ctx: &Ctx,
    req: &Request,
    stream: &mut TcpStream,
    keep_alive: bool,
) -> io::Result<(u16, bool)> {
    let ka = keep_alive;
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("POST", ["v1", "jobs"]) => submit(ctx, req, stream, ka),
        ("GET", ["v1", "jobs", id]) => job_state(ctx, id, stream, ka),
        ("GET", ["v1", "jobs", id, "result"]) => job_result(ctx, id, stream, ka),
        ("GET", ["v1", "jobs", id, "events"]) => job_events(ctx, req, id, stream),
        ("DELETE", ["v1", "jobs", id]) => job_cancel(ctx, id, stream, ka),
        ("GET", ["v1", "metrics"]) => metrics(stream, ka),
        ("GET", ["v1", "cluster"]) => cluster(ctx, stream, ka),
        (_, ["v1", "jobs"])
        | (_, ["v1", "jobs", ..])
        | (_, ["v1", "metrics"])
        | (_, ["v1", "cluster"]) => {
            let body = error_body(
                "method_not_allowed",
                &format!("{} not allowed here", req.method),
            );
            http::respond_json(stream, 405, &body, ka)?;
            Ok((405, ka))
        }
        _ => {
            let body = error_body("not_found", &format!("no route for {}", req.path));
            http::respond_json(stream, 404, &body, ka)?;
            Ok((404, ka))
        }
    }
}

/// Decodes the submit body into a [`JobRequest`].
///
/// Accepted fields: `source` (an `.ox` deck) **or** `bench` (a named
/// benchmark from the built-in suite, resolved server-side); plus
/// `name`, `deck`, `seeds` (count or explicit array), `moves`,
/// `quench`, `priority`. Unknown fields are rejected so typos fail
/// loudly instead of silently running defaults.
fn parse_submit_body(body: &[u8]) -> Result<JobRequest, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    let v = astrx_oblx::json::parse(text).map_err(|e| format!("body is not JSON: {e}"))?;
    let Value::Obj(members) = &v else {
        return Err("body must be a JSON object".to_string());
    };
    for (key, _) in members {
        if !matches!(
            key.as_str(),
            "source" | "bench" | "name" | "deck" | "seeds" | "moves" | "quench" | "priority"
        ) {
            return Err(format!("unknown field `{key}`"));
        }
    }
    let (source, deck, default_name) = match v.get("bench").and_then(Value::as_str) {
        Some(bench) => {
            if v.get("source").is_some() || v.get("deck").is_some() {
                return Err("`bench` and `source`/`deck` are mutually exclusive".to_string());
            }
            let b = astrx_oblx::bench_suite::by_name(bench)
                .ok_or_else(|| format!("unknown benchmark `{bench}`"))?;
            (b.source.to_string(), b.deck.label().to_string(), b.name)
        }
        None => (
            v.get("source")
                .and_then(Value::as_str)
                .ok_or("`source` (string) or `bench` (string) is required")?
                .to_string(),
            v.get("deck")
                .and_then(Value::as_str)
                .unwrap_or("")
                .to_string(),
            "api-job",
        ),
    };
    let seeds = match v.get("seeds") {
        None => vec![1, 2, 3],
        Some(Value::Int(n)) if *n > 0 && *n <= 1024 => (1..=*n as u64).collect(),
        Some(Value::Arr(items)) if !items.is_empty() && items.len() <= 1024 => {
            let mut seeds = Vec::with_capacity(items.len());
            for item in items {
                match item.as_int() {
                    Some(s) if s > 0 => seeds.push(s as u64),
                    _ => return Err("`seeds` array wants positive integers".to_string()),
                }
            }
            seeds
        }
        Some(_) => {
            return Err("`seeds` wants a positive count or a non-empty array of them".to_string())
        }
    };
    let moves = match v.get("moves") {
        None => 60_000,
        Some(m) => match m.as_int() {
            Some(n) if n > 0 => n as usize,
            _ => return Err("`moves` wants a positive integer".to_string()),
        },
    };
    let default_opts = SynthesisOptions::default();
    let quench = match v.get("quench") {
        None => default_opts.quench_patience,
        Some(q) => match q.as_int() {
            Some(n) if n > 0 => n as usize,
            _ => return Err("`quench` wants a positive integer".to_string()),
        },
    };
    let priority = match v.get("priority") {
        None => 0,
        Some(p) => p.as_int().ok_or("`priority` wants an integer")?,
    };
    Ok(JobRequest {
        name: v
            .get("name")
            .and_then(Value::as_str)
            .unwrap_or(default_name)
            .to_string(),
        source,
        deck,
        options: SynthesisOptions {
            moves_budget: moves,
            quench_patience: quench,
            ..default_opts
        },
        seeds,
        priority,
    })
}

/// `POST /v1/jobs` — validate at the edge, spool on success.
fn submit(ctx: &Ctx, req: &Request, stream: &mut TcpStream, ka: bool) -> io::Result<(u16, bool)> {
    let request = match parse_submit_body(&req.body) {
        Ok(r) => r,
        Err(msg) => {
            http::respond_json(stream, 400, &error_body("bad_request", &msg), ka)?;
            return Ok((400, ka));
        }
    };
    // The same validation the worker pool would run, pulled forward to
    // the edge: a deck that cannot compile never enters the queue, and
    // the submitter gets the parser's line/column back as JSON.
    if let Err(e) = oblx_runtime::validate_job(&request) {
        let (status, body) = match &e {
            JobError::Parse(pe) => {
                let mut err = ObjBuilder::new()
                    .field("kind", "parse")
                    .field("message", pe.message.as_str());
                if let Some((line, column)) = pe.location() {
                    err = err.field("line", line);
                    if let Some(column) = column {
                        err = err.field("column", column);
                    }
                }
                (
                    422,
                    ObjBuilder::new()
                        .field("error", err.build())
                        .build()
                        .to_json(),
                )
            }
            JobError::UnknownDeck(_) => (422, error_body("unknown_deck", &e.to_string())),
            JobError::Compile(_) => (422, error_body("compile", &e.to_string())),
        };
        http::respond_json(stream, status, &body, ka)?;
        return Ok((status, ka));
    }
    match ctx.spool.submit(request) {
        Ok(job) => {
            EventLog::open(&ctx.spool, &job.id).emit(
                "submitted",
                &[
                    ("name", job.request.name.as_str().into()),
                    ("seeds", job.request.seeds.len().into()),
                    ("priority", job.request.priority.into()),
                    ("via", "api".into()),
                ],
            );
            let body = ObjBuilder::new()
                .field("id", job.id.as_str())
                .field("name", job.request.name.as_str())
                .field("seeds", job.request.seeds.len())
                .field("events_url", format!("/v1/jobs/{}/events", job.id))
                .build()
                .to_json();
            http::respond_json(stream, 201, &body, ka)?;
            Ok((201, ka))
        }
        Err(e) => {
            let body = error_body("spool", &format!("submit failed: {e}"));
            http::respond_json(stream, 500, &body, ka)?;
            Ok((500, ka))
        }
    }
}

/// The job's current lifecycle state, resolved in terminal-first order
/// so a job mid-transition reads as its most-final state.
fn state_of(spool: &Spool, id: &str) -> Option<Value> {
    if let Some(record) = spool.done(id) {
        let status = record
            .get("status")
            .and_then(Value::as_str)
            .unwrap_or("ok")
            .to_string();
        return Some(
            ObjBuilder::new()
                .field("id", id)
                .field("state", "done")
                .field("status", status)
                .field("result_url", format!("/v1/jobs/{id}/result"))
                .build(),
        );
    }
    if spool.cancelled(id).is_some() {
        return Some(
            ObjBuilder::new()
                .field("id", id)
                .field("state", "cancelled")
                .field("result_url", format!("/v1/jobs/{id}/result"))
                .build(),
        );
    }
    if let Some(job) = spool.running().into_iter().find(|j| j.id == id) {
        let p = job_progress(spool, &job);
        let attempted = Value::Obj(
            p.seed_attempted
                .iter()
                .map(|(seed, moves)| (seed.to_string(), Value::from(*moves)))
                .collect(),
        );
        return Some(
            ObjBuilder::new()
                .field("id", id)
                .field("state", "running")
                .field("name", p.name.as_str())
                .field("seeds_total", p.seeds_total)
                .field("seeds_done", p.seeds_done)
                .field("seed_moves_attempted", attempted)
                .field("moves_budget", p.moves_budget)
                .field("cancel_requested", spool.cancel_requested(id))
                .build(),
        );
    }
    let pending = spool.pending();
    if let Some(position) = pending.iter().position(|j| j.id == id) {
        let job = &pending[position];
        return Some(
            ObjBuilder::new()
                .field("id", id)
                .field("state", "queued")
                .field("name", job.request.name.as_str())
                .field("priority", job.request.priority)
                .field("position", position)
                .build(),
        );
    }
    None
}

/// `GET /v1/jobs/:id`.
fn job_state(ctx: &Ctx, id: &str, stream: &mut TcpStream, ka: bool) -> io::Result<(u16, bool)> {
    match state_of(&ctx.spool, id) {
        Some(state) => {
            http::respond_json(stream, 200, &state.to_json(), ka)?;
            Ok((200, ka))
        }
        None => {
            let body = error_body("not_found", &format!("no job {id}"));
            http::respond_json(stream, 404, &body, ka)?;
            Ok((404, ka))
        }
    }
}

/// `GET /v1/jobs/:id/result` — the terminal record, verbatim from the
/// result store (`done/` or `cancelled/`).
fn job_result(ctx: &Ctx, id: &str, stream: &mut TcpStream, ka: bool) -> io::Result<(u16, bool)> {
    if let Some(record) = ctx.spool.done(id).or_else(|| ctx.spool.cancelled(id)) {
        http::respond_json(stream, 200, &record.to_json(), ka)?;
        return Ok((200, ka));
    }
    if state_of(&ctx.spool, id).is_some() {
        let body = error_body("not_ready", &format!("job {id} has not finished"));
        http::respond_json(stream, 409, &body, ka)?;
        return Ok((409, ka));
    }
    let body = error_body("not_found", &format!("no job {id}"));
    http::respond_json(stream, 404, &body, ka)?;
    Ok((404, ka))
}

/// `DELETE /v1/jobs/:id`.
fn job_cancel(ctx: &Ctx, id: &str, stream: &mut TcpStream, ka: bool) -> io::Result<(u16, bool)> {
    let name = ctx
        .spool
        .pending()
        .into_iter()
        .chain(ctx.spool.running())
        .find(|j| j.id == id)
        .map(|j| j.request.name)
        .unwrap_or_else(|| id.to_string());
    let (status, body) = match ctx.spool.cancel(id, &name) {
        Ok(
            outcome @ (CancelOutcome::Dequeued
            | CancelOutcome::Requested
            | CancelOutcome::AlreadyCancelled),
        ) => {
            let phase = match outcome {
                CancelOutcome::Dequeued => "dequeued",
                CancelOutcome::Requested => "requested",
                _ => "already_cancelled",
            };
            (
                200,
                ObjBuilder::new()
                    .field("id", id)
                    .field("cancelled", true)
                    .field("phase", phase)
                    .build()
                    .to_json(),
            )
        }
        Ok(CancelOutcome::AlreadyDone) => (
            409,
            error_body("already_done", &format!("job {id} already finished")),
        ),
        Ok(CancelOutcome::Unknown) => (404, error_body("not_found", &format!("no job {id}"))),
        Err(e) => (500, error_body("spool", &format!("cancel failed: {e}"))),
    };
    http::respond_json(stream, status, &body, ka)?;
    Ok((status, ka))
}

/// `GET /v1/jobs/:id/events` — a chunked tail of the JSONL event log.
/// With `?follow=0` the current log is dumped and the stream closes;
/// otherwise new lines stream as they land until the job reaches a
/// terminal state (or the server shuts down / the client hangs up).
fn job_events(
    ctx: &Ctx,
    req: &Request,
    id: &str,
    stream: &mut TcpStream,
) -> io::Result<(u16, bool)> {
    let log = EventLog::open(&ctx.spool, id);
    let known = state_of(&ctx.spool, id).is_some()
        || ctx.spool.events_dir().join(format!("{id}.jsonl")).exists();
    if !known {
        let body = error_body("not_found", &format!("no job {id}"));
        http::respond_json(stream, 404, &body, false)?;
        return Ok((404, false));
    }
    let follow = !req.query.split('&').any(|kv| kv == "follow=0");
    let mut writer = ChunkedWriter::start(stream, 200, "application/x-ndjson")?;
    let mut offset = 0u64;
    loop {
        // Read the terminal marker *before* draining the log so the
        // job_cancelled/done line written just before the state flip
        // cannot slip between our read and our exit.
        let terminal = ctx.spool.done(id).is_some() || ctx.spool.cancelled(id).is_some();
        let (text, new_offset) = log.read_raw_from(offset);
        offset = new_offset;
        // A client that went away surfaces as a write error here; stop
        // streaming quietly rather than spinning on a dead socket.
        writer.write_chunk(text.as_bytes())?;
        if !follow || terminal || ctx.shutdown.load(Ordering::SeqCst) {
            break;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    writer.finish()?;
    Ok((200, false))
}

/// `GET /v1/cluster` — who is draining this spool right now: one entry
/// per host heartbeat, each with its pid, beat counter, and the live
/// worker snapshot, plus the spool-wide lease count. This is the
/// API-side view of `oblxd status` on a multi-host spool.
fn cluster(ctx: &Ctx, stream: &mut TcpStream, ka: bool) -> io::Result<(u16, bool)> {
    let workers = oblx_runtime::events::read_workers(&ctx.spool);
    let hosts: Vec<Value> = ctx
        .spool
        .hosts()
        .into_iter()
        .map(|h| {
            let rows: Vec<Value> = workers
                .iter()
                .filter(|w| w.host == h.host)
                .map(|w| {
                    ObjBuilder::new()
                        .field("worker", w.worker)
                        .field("busy", w.busy)
                        .field("job", w.job.clone().map(Value::Str).unwrap_or(Value::Null))
                        .field(
                            "seed",
                            w.seed
                                .and_then(|s| i64::try_from(s).ok())
                                .map(Value::Int)
                                .unwrap_or(Value::Null),
                        )
                        .field("tasks_done", w.tasks_done)
                        .build()
                })
                .collect();
            ObjBuilder::new()
                .field("host", h.host.as_str())
                .field("pid", i64::from(h.pid))
                .field("workers", h.workers)
                .field("beat", i64::try_from(h.beat).unwrap_or(i64::MAX))
                .field("worker_state", Value::Arr(rows))
                .build()
        })
        .collect();
    let body = ObjBuilder::new()
        .field("hosts", Value::Arr(hosts))
        .field("leases", ctx.spool.leases().len())
        .build()
        .to_json();
    http::respond_json(stream, 200, &body, ka)?;
    Ok((200, ka))
}

/// `GET /v1/metrics` — the live telemetry snapshot, same JSON the
/// daemon appends to `metrics.jsonl`.
fn metrics(stream: &mut TcpStream, ka: bool) -> io::Result<(u16, bool)> {
    let snapshot = oblx_telemetry::Snapshot::capture();
    http::respond_json(stream, 200, &snapshot.to_json(), ka)?;
    Ok((200, ka))
}
