//! The TCP front: a nonblocking accept loop, a bounded admission
//! queue, and a small worker-thread pool.
//!
//! The shape is a textbook bounded producer/consumer, and the bound is
//! the point: under a flood the queue fills, further connections get
//! an immediate `429` written from the accept thread, and the workers
//! keep draining at their own pace — load sheds at the door instead of
//! accumulating open sockets until the process falls over. Per-client
//! token buckets ([`crate::quota`]) sit behind admission, so one noisy
//! client is throttled before it can crowd out the rest.

use crate::http::{self, HttpError};
use crate::quota::Quota;
use crate::routes::{self, Ctx};
use oblx_runtime::spool::Spool;
use oblx_telemetry::{Counter, SpanKind};
use std::collections::VecDeque;
use std::io;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Tuning knobs for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Bind address (`host:port`; port 0 picks a free one).
    pub addr: String,
    /// Worker threads handling requests.
    pub threads: usize,
    /// Connections allowed to wait for a worker before new ones are
    /// shed with 429.
    pub admission_capacity: usize,
    /// Sustained per-client requests/second (`<= 0` disables quotas).
    pub quota_rate: f64,
    /// Per-client burst allowance.
    pub quota_burst: f64,
    /// Socket read timeout (slow-loris bound).
    pub read_timeout: Duration,
    /// Socket write timeout (dead-client bound).
    pub write_timeout: Duration,
    /// Maximum accepted request body, bytes.
    pub max_body: usize,
    /// Requests served per keep-alive connection before the server
    /// closes it (`1` disables keep-alive entirely). The cap bounds how
    /// long one client can monopolize a worker thread.
    pub keepalive_max_requests: usize,
    /// How long a keep-alive connection may sit idle between requests
    /// before the server closes it.
    pub keepalive_idle_timeout: Duration,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            addr: "127.0.0.1:0".to_string(),
            threads: 4,
            admission_capacity: 64,
            quota_rate: 50.0,
            quota_burst: 100.0,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            max_body: 1024 * 1024,
            keepalive_max_requests: 100,
            keepalive_idle_timeout: Duration::from_secs(5),
        }
    }
}

/// The admission queue: accepted connections waiting for a worker.
struct Admission {
    queue: Mutex<VecDeque<TcpStream>>,
    ready: Condvar,
    capacity: usize,
}

/// A running HTTP edge. Dropping the handle does not stop it; raise
/// the shutdown flag (or send the process SIGTERM when using the flag
/// from [`oblx_runtime::signal`]) and call [`Server::join`].
pub struct Server {
    addr: std::net::SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the accept loop and worker pool, and returns.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn start(
        spool: Spool,
        opts: &ServerOptions,
        shutdown: Arc<AtomicBool>,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(&opts.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let admission = Arc::new(Admission {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            capacity: opts.admission_capacity.max(1),
        });
        let ctx = Arc::new(Ctx {
            spool,
            shutdown: Arc::clone(&shutdown),
        });
        let quota = Arc::new(Quota::new(opts.quota_rate, opts.quota_burst));

        let workers = (0..opts.threads.max(1))
            .map(|_| {
                let admission = Arc::clone(&admission);
                let ctx = Arc::clone(&ctx);
                let quota = Arc::clone(&quota);
                let opts = opts.clone();
                let shutdown = Arc::clone(&shutdown);
                std::thread::spawn(move || worker_loop(&admission, &ctx, &quota, &opts, &shutdown))
            })
            .collect();

        let accept_thread = {
            let admission = Arc::clone(&admission);
            let shutdown = Arc::clone(&shutdown);
            let write_timeout = opts.write_timeout;
            std::thread::spawn(move || {
                accept_loop(&listener, &admission, &shutdown, write_timeout);
            })
        };
        Ok(Server {
            addr,
            shutdown,
            accept_thread: Some(accept_thread),
            workers,
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Raises the shutdown flag and waits for the accept loop and all
    /// workers to drain and exit.
    pub fn join(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    admission: &Admission,
    shutdown: &AtomicBool,
    write_timeout: Duration,
) {
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((mut stream, _peer)) => {
                let mut queue = admission.queue.lock().unwrap();
                if queue.len() >= admission.capacity {
                    drop(queue);
                    // Shed at the door: a one-line 429 written from the
                    // accept thread, bounded by the write timeout.
                    oblx_telemetry::incr(Counter::HttpAdmissionRejected);
                    let _ = stream.set_write_timeout(Some(write_timeout));
                    let _ = stream.set_nodelay(true);
                    let body = routes::error_body("admission", "server is at capacity, retry");
                    let _ = http::respond_json(&mut stream, 429, &body, false);
                    continue;
                }
                queue.push_back(stream);
                drop(queue);
                admission.ready.notify_one();
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    // Wake every worker so they observe the flag and exit.
    admission.ready.notify_all();
}

fn worker_loop(
    admission: &Admission,
    ctx: &Ctx,
    quota: &Quota,
    opts: &ServerOptions,
    shutdown: &AtomicBool,
) {
    loop {
        let stream = {
            let mut queue = admission.queue.lock().unwrap();
            loop {
                if let Some(stream) = queue.pop_front() {
                    break Some(stream);
                }
                if shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                let (q, _) = admission
                    .ready
                    .wait_timeout(queue, Duration::from_millis(100))
                    .unwrap();
                queue = q;
            }
        };
        let Some(mut stream) = stream else { return };
        let _ = stream.set_write_timeout(Some(opts.write_timeout));
        // Responses go out as two small writes (head, then body); with
        // Nagle on, the second would stall ~40 ms behind the peer's
        // delayed ACK on a reused keep-alive connection.
        let _ = stream.set_nodelay(true);
        // Keep-alive: serve up to `keepalive_max_requests` requests off
        // this connection. The first head read runs under the ordinary
        // read timeout; between requests the shorter idle timeout
        // applies, so a parked client gives the thread back quickly.
        let mut served = 0usize;
        loop {
            let timeout = if served == 0 {
                opts.read_timeout
            } else {
                opts.read_timeout.min(opts.keepalive_idle_timeout)
            };
            let _ = stream.set_read_timeout(Some(timeout));
            let last = served + 1 >= opts.keepalive_max_requests.max(1);
            let offer = !last && !shutdown.load(Ordering::SeqCst);
            let Some((status, keep)) = serve_one(ctx, quota, opts, &mut stream, offer, served > 0)
            else {
                break;
            };
            served += 1;
            if (400..500).contains(&status) {
                oblx_telemetry::incr(Counter::Http4xx);
            } else if status >= 500 {
                oblx_telemetry::incr(Counter::Http5xx);
            }
            if !keep {
                break;
            }
        }
    }
}

/// Reads, quota-checks, and dispatches one request. `offer_keep_alive`
/// is the server's willingness to serve another request afterwards;
/// the response persists the connection only when the client agrees.
/// Returns the response status and whether the connection stays open,
/// or `None` when the socket died (or, on a kept-alive connection,
/// went idle past the timeout) before an answer could be written.
fn serve_one(
    ctx: &Ctx,
    quota: &Quota,
    opts: &ServerOptions,
    stream: &mut TcpStream,
    offer_keep_alive: bool,
    idle_wait: bool,
) -> Option<(u16, bool)> {
    // Quota key: the peer IP. Behind a reverse proxy every request
    // shares one IP and the bucket becomes a global limiter — still
    // the safe failure direction for an edge this small.
    let key = stream
        .peer_addr()
        .map(|a| a.ip().to_string())
        .unwrap_or_else(|_| "unknown".to_string());
    let req = match http::read_request(stream, opts.max_body) {
        Ok(req) => req,
        Err(HttpError::BadRequest(msg)) => {
            // A clean EOF between keep-alive requests is the client
            // hanging up, not a malformed request.
            if idle_wait && msg == "connection closed mid-head" {
                return None;
            }
            let _ =
                http::respond_json(stream, 400, &routes::error_body("bad_request", &msg), false);
            return Some((400, false));
        }
        Err(HttpError::HeadTooLarge) => {
            let body = routes::error_body("head_too_large", "request head over 8 KiB");
            let _ = http::respond_json(stream, 431, &body, false);
            return Some((431, false));
        }
        Err(HttpError::BodyTooLarge(n)) => {
            let body = routes::error_body(
                "body_too_large",
                &format!("body of {n} bytes over the {}-byte cap", opts.max_body),
            );
            let _ = http::respond_json(stream, 413, &body, false);
            return Some((413, false));
        }
        Err(HttpError::Io(_)) => return None,
    };
    let _span = oblx_telemetry::span(SpanKind::HttpRequest);
    oblx_telemetry::incr(Counter::HttpRequest);
    let keep_alive = offer_keep_alive && req.keep_alive;
    if !quota.admit(&key) {
        oblx_telemetry::incr(Counter::HttpQuotaRejected);
        let body = routes::error_body("quota", "per-client rate limit exceeded, slow down");
        let _ = http::respond_json(stream, 429, &body, keep_alive);
        return Some((429, keep_alive));
    }
    routes::handle(ctx, &req, stream, keep_alive).ok()
}
