//! **oblx-api** — synthesis-as-a-service: an HTTP edge in front of the
//! `oblxd` spool.
//!
//! The 1994 ASTRX/OBLX loop was one designer at one workstation. The
//! spool (`oblx-runtime`) already decouples submission from execution
//! through the filesystem; this crate puts a network protocol on that
//! seam so the queue can serve a team — CI bots submitting regression
//! decks, a designer tailing a run from a laptop — without anyone
//! needing shell access to the spool host.
//!
//! Everything is hand-rolled on `std::net` because the workspace
//! vendors no web framework, and because the protocol surface we need
//! is genuinely small — seven routes, bounded keep-alive, one chunked
//! stream:
//!
//! * [`http`] — HTTP/1.1 request parsing and response writing, with
//!   hard caps on head and body size and socket timeouts everywhere.
//! * [`quota`] — per-client token buckets: burst then sustained rate,
//!   429 beyond.
//! * [`server`] — nonblocking accept loop, **bounded** admission queue
//!   (full → shed with 429 at the door), worker-thread pool, graceful
//!   shutdown off the same flag the worker pool uses.
//! * [`routes`] — the seven endpoints. Submissions are validated at the
//!   edge with the same [`oblx_runtime::validate_job`] path the
//!   workers use; the netlist parser's line/column diagnostics come
//!   back as structured 4xx JSON.
//!
//! The binary front end lives in `src/bin/oblx-api.rs`:
//!
//! ```text
//! oblx-api serve --dir SPOOL [--addr HOST:PORT] [--threads N]
//!                [--pool-workers N | --no-pool]
//!                [--rate R] [--burst B] [--admission N]
//! ```
//!
//! By default `serve` also runs an in-process worker pool over the
//! same spool, so one process is a complete synthesis service; with
//! `--no-pool` it is a pure front end for separately-run `oblxd`
//! daemons.

pub mod http;
pub mod quota;
pub mod routes;
pub mod server;
