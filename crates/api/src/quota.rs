//! Per-client token-bucket quotas.
//!
//! Each client key (the peer IP) gets a bucket holding up to `burst`
//! tokens that refills at `rate` tokens/second. A request costs one
//! token; an empty bucket means 429. The arithmetic runs on an
//! injected monotonic-nanosecond clock so tests can step time
//! deterministically instead of sleeping.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Instant;

struct Bucket {
    /// Tokens available, fractional between refills.
    tokens: f64,
    /// Clock reading at the last refill.
    last_ns: u64,
}

/// A map of token buckets keyed by client identity.
pub struct Quota {
    rate_per_s: f64,
    burst: f64,
    buckets: Mutex<HashMap<String, Bucket>>,
    epoch: Instant,
}

impl Quota {
    /// A limiter granting `burst` immediate requests per client and
    /// `rate_per_s` sustained. Non-positive `rate_per_s` disables
    /// limiting entirely (every `admit` succeeds).
    pub fn new(rate_per_s: f64, burst: f64) -> Quota {
        Quota {
            rate_per_s,
            burst: burst.max(1.0),
            buckets: Mutex::new(HashMap::new()),
            epoch: Instant::now(),
        }
    }

    /// Whether limiting is active.
    pub fn enabled(&self) -> bool {
        self.rate_per_s > 0.0
    }

    /// Takes one token from `key`'s bucket using the real clock.
    pub fn admit(&self, key: &str) -> bool {
        let now_ns = u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.admit_at(key, now_ns)
    }

    /// Takes one token from `key`'s bucket at monotonic time `now_ns`.
    /// Visible for tests; production goes through [`Quota::admit`].
    pub fn admit_at(&self, key: &str, now_ns: u64) -> bool {
        if !self.enabled() {
            return true;
        }
        let mut buckets = self.buckets.lock().unwrap();
        let bucket = buckets.entry(key.to_string()).or_insert(Bucket {
            tokens: self.burst,
            last_ns: now_ns,
        });
        let dt_s = now_ns.saturating_sub(bucket.last_ns) as f64 / 1e9;
        bucket.tokens = (bucket.tokens + dt_s * self.rate_per_s).min(self.burst);
        bucket.last_ns = now_ns;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_then_throttle_then_refill() {
        let q = Quota::new(10.0, 3.0);
        // The burst allowance goes immediately…
        assert!(q.admit_at("a", 0));
        assert!(q.admit_at("a", 0));
        assert!(q.admit_at("a", 0));
        // …then the bucket is dry…
        assert!(!q.admit_at("a", 0));
        assert!(!q.admit_at("a", 50_000_000)); // +50 ms: only half a token
                                               // …and refills at 10/s: one token per 100 ms.
        assert!(q.admit_at("a", 100_000_000));
        assert!(!q.admit_at("a", 100_000_000));
    }

    #[test]
    fn clients_do_not_share_buckets() {
        let q = Quota::new(1.0, 1.0);
        assert!(q.admit_at("a", 0));
        assert!(!q.admit_at("a", 0));
        assert!(q.admit_at("b", 0), "b's bucket is untouched by a");
    }

    #[test]
    fn refill_caps_at_burst() {
        let q = Quota::new(100.0, 2.0);
        assert!(q.admit_at("a", 0));
        assert!(q.admit_at("a", 0));
        // An hour idle must still only buy `burst` tokens.
        let hour = 3_600_000_000_000;
        assert!(q.admit_at("a", hour));
        assert!(q.admit_at("a", hour));
        assert!(!q.admit_at("a", hour));
    }

    #[test]
    fn zero_rate_disables_limiting() {
        let q = Quota::new(0.0, 1.0);
        for _ in 0..1000 {
            assert!(q.admit_at("a", 0));
        }
    }
}
