//! Raw-socket HTTP client helpers for the API integration tests. The
//! tests talk to the server exactly the way `curl` would — bytes on a
//! `TcpStream` — so the hand-rolled parser and writer are exercised
//! from the wire side, not through their own types.
//!
//! (Each integration-test binary compiles its own copy and uses a
//! different subset of the helpers, hence the dead_code allow.)
#![allow(dead_code)]

use astrx_oblx::json::Value;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::Duration;

/// A parsed response: status code, raw headers, decoded body.
pub struct Response {
    pub status: u16,
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Response {
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    pub fn json(&self) -> Value {
        astrx_oblx::json::parse(std::str::from_utf8(&self.body).expect("body is UTF-8"))
            .expect("body is JSON")
    }

    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Sends one request with `Connection: close` and reads the response
/// to EOF. Chunked bodies are decoded.
pub fn request(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> Response {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    let body = body.unwrap_or("");
    let raw = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(raw.as_bytes()).expect("send request");
    let mut bytes = Vec::new();
    stream.read_to_end(&mut bytes).expect("read response");
    parse_response(&bytes)
}

/// Sends one request on an already-open keep-alive connection and
/// reads exactly one `Content-Length`-framed response off it, leaving
/// the connection usable for the next request.
pub fn request_on(stream: &mut TcpStream, method: &str, path: &str) -> Response {
    let raw = format!("{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: 0\r\n\r\n");
    stream.write_all(raw.as_bytes()).expect("send request");
    let mut bytes = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        // Head first, then exactly Content-Length body bytes.
        if let Some(head_end) = bytes.windows(4).position(|w| w == b"\r\n\r\n") {
            let head = String::from_utf8_lossy(&bytes[..head_end]).to_ascii_lowercase();
            let need: usize = head
                .lines()
                .find_map(|l| l.strip_prefix("content-length:"))
                .and_then(|v| v.trim().parse().ok())
                .expect("keep-alive response has Content-Length");
            if bytes.len() >= head_end + 4 + need {
                bytes.truncate(head_end + 4 + need);
                return parse_response(&bytes);
            }
        }
        let n = stream.read(&mut chunk).expect("read response");
        assert!(n > 0, "server closed mid-response");
        bytes.extend_from_slice(&chunk[..n]);
    }
}

pub fn get(addr: SocketAddr, path: &str) -> Response {
    request(addr, "GET", path, None)
}

pub fn post(addr: SocketAddr, path: &str, body: &str) -> Response {
    request(addr, "POST", path, Some(body))
}

fn parse_response(bytes: &[u8]) -> Response {
    let head_end = bytes
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("response has a head terminator");
    let head = std::str::from_utf8(&bytes[..head_end]).expect("head is UTF-8");
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap();
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .expect("status line has a code")
        .parse()
        .expect("status code parses");
    let headers: Vec<(String, String)> = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    let raw_body = &bytes[head_end + 4..];
    let chunked = headers
        .iter()
        .any(|(k, v)| k == "transfer-encoding" && v == "chunked");
    let body = if chunked {
        dechunk(raw_body)
    } else {
        raw_body.to_vec()
    };
    Response {
        status,
        headers,
        body,
    }
}

/// Decodes a `Transfer-Encoding: chunked` body.
fn dechunk(mut raw: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    while let Some(line_end) = raw.windows(2).position(|w| w == b"\r\n") {
        let size_line = std::str::from_utf8(&raw[..line_end]).expect("chunk size is UTF-8");
        let size = usize::from_str_radix(size_line.trim(), 16).expect("chunk size is hex");
        raw = &raw[line_end + 2..];
        if size == 0 {
            break;
        }
        out.extend_from_slice(&raw[..size]);
        raw = &raw[size + 2..]; // chunk data + trailing \r\n
    }
    out
}

/// A fresh temp directory for one test.
pub fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("oblx-api-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A submit body for the Simple OTA benchmark with `seeds` seeds and a
/// small move budget, as a client would POST it.
pub fn ota_submit_body(name: &str, seeds: usize, moves: usize) -> String {
    let b = astrx_oblx::bench_suite::by_name("Simple OTA").expect("benchmark exists");
    astrx_oblx::json::ObjBuilder::new()
        .field("name", name)
        .field("source", b.source)
        .field("deck", b.deck.label())
        .field("seeds", i64::try_from(seeds).unwrap())
        .field("moves", i64::try_from(moves).unwrap())
        .build()
        .to_json()
}

/// Polls `GET /v1/jobs/:id` until its `state` is one of `states` (or
/// panics after `secs` seconds), returning the final state object.
pub fn wait_for_state(addr: SocketAddr, id: &str, states: &[&str], secs: u64) -> Value {
    let deadline = std::time::Instant::now() + Duration::from_secs(secs);
    loop {
        let resp = get(addr, &format!("/v1/jobs/{id}"));
        if resp.status == 200 {
            let v = resp.json();
            let state = v.get("state").and_then(Value::as_str).unwrap_or("");
            if states.contains(&state) {
                return v;
            }
        }
        assert!(
            std::time::Instant::now() < deadline,
            "job {id} did not reach {states:?} within {secs}s"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}
