//! Stress test for the spool under concurrent HTTP submits, direct
//! claims, and cancels — the exact contention pattern of one edge
//! process fronting several `oblxd` daemons on a shared spool.
//!
//! Invariants checked after the storm:
//! * no job is lost — every accepted submission reaches exactly one
//!   terminal set (`done/` or `cancelled/`);
//! * no job is double-claimed — the claimers' combined id multiset has
//!   no duplicates;
//! * nothing is left behind — queue and running are empty, and nothing
//!   was quarantined as corrupt.

mod common;

use astrx_oblx::json::ObjBuilder;
use common::*;
use oblx_api::server::{Server, ServerOptions};
use oblx_runtime::spool::Spool;
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

const SUBMITTERS: usize = 4;
const JOBS_PER_SUBMITTER: usize = 12;
const CLAIMERS: usize = 4;

#[test]
fn concurrent_submit_claim_cancel_loses_nothing() {
    let dir = temp_dir("race");
    let shutdown = Arc::new(AtomicBool::new(false));
    let opts = ServerOptions {
        threads: 4,
        quota_rate: 0.0,
        ..ServerOptions::default()
    };
    let server = Server::start(
        Spool::open(dir.join("spool")).unwrap(),
        &opts,
        Arc::clone(&shutdown),
    )
    .unwrap();
    let addr = server.addr();
    let spool = Spool::open(dir.join("spool")).unwrap();

    let submitted: Mutex<Vec<String>> = Mutex::new(Vec::new());
    let claimed: Mutex<Vec<String>> = Mutex::new(Vec::new());
    let done_submitting = AtomicBool::new(false);

    std::thread::scope(|s| {
        // Submitters: HTTP POSTs racing each other through the edge.
        for t in 0..SUBMITTERS {
            let submitted = &submitted;
            s.spawn(move || {
                for i in 0..JOBS_PER_SUBMITTER {
                    let resp = post(
                        addr,
                        "/v1/jobs",
                        &ota_submit_body(&format!("race-{t}-{i}"), 1, 100),
                    );
                    assert_eq!(resp.status, 201, "submit failed: {}", resp.text());
                    let id = resp.json().get("id").unwrap().as_str().unwrap().to_string();
                    submitted.lock().unwrap().push(id);
                }
            });
        }
        // Claimers: play the role of `oblxd` workers — claim, honor a
        // tombstone if one raced in, otherwise complete with a stub
        // record (running real synthesis here would only slow the
        // contention window down).
        for _ in 0..CLAIMERS {
            let spool = Spool::open(dir.join("spool")).unwrap();
            let claimed = &claimed;
            let done_submitting = &done_submitting;
            s.spawn(move || loop {
                match spool.claim_next() {
                    Some(job) => {
                        claimed.lock().unwrap().push(job.id.clone());
                        if spool.cancel_requested(&job.id) {
                            spool
                                .complete_cancelled(&job.id, &job.request.name)
                                .unwrap();
                        } else {
                            let record = ObjBuilder::new()
                                .field("format", "oblx-result")
                                .field("version", 1i64)
                                .field("id", job.id.as_str())
                                .field("name", job.request.name.as_str())
                                .field("status", "ok")
                                .build();
                            spool.complete(&job.id, &record).unwrap();
                        }
                    }
                    None => {
                        if done_submitting.load(Ordering::SeqCst) && spool.pending().is_empty() {
                            break;
                        }
                        std::thread::yield_now();
                    }
                }
            });
        }
        // A canceller: fires DELETEs at ids as they appear, racing the
        // claimers for each job.
        {
            let submitted = &submitted;
            let done_submitting = &done_submitting;
            s.spawn(move || {
                let mut hit = 0usize;
                let mut seen = 0usize;
                while !(done_submitting.load(Ordering::SeqCst)
                    && seen == SUBMITTERS * JOBS_PER_SUBMITTER)
                {
                    let ids: Vec<String> = {
                        let lock = submitted.lock().unwrap();
                        lock[seen..].to_vec()
                    };
                    for id in ids {
                        seen += 1;
                        // Cancel every third job to interleave all
                        // three operations on the same directories.
                        if hit.is_multiple_of(3) {
                            let resp = request(addr, "DELETE", &format!("/v1/jobs/{id}"), None);
                            assert!(
                                [200, 404, 409].contains(&resp.status),
                                "unexpected cancel status {}: {}",
                                resp.status,
                                resp.text()
                            );
                        }
                        hit += 1;
                    }
                    std::thread::yield_now();
                }
            });
        }
        // Submitters finish first; signal the draining threads.
        // (Scoped threads: the spawns above joined here would deadlock
        // the claimers' exit condition, so flip the flag from a
        // dedicated watcher once the submitted count is full.)
        let submitted = &submitted;
        let done_submitting = &done_submitting;
        s.spawn(move || {
            while submitted.lock().unwrap().len() < SUBMITTERS * JOBS_PER_SUBMITTER {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            done_submitting.store(true, Ordering::SeqCst);
        });
    });

    let submitted = submitted.into_inner().unwrap();
    let claimed = claimed.into_inner().unwrap();
    assert_eq!(submitted.len(), SUBMITTERS * JOBS_PER_SUBMITTER);

    // No duplicate ids were ever handed out by the edge.
    let unique_submitted: HashSet<&String> = submitted.iter().collect();
    assert_eq!(
        unique_submitted.len(),
        submitted.len(),
        "duplicate job ids issued"
    );

    // No job was double-claimed.
    let unique_claimed: HashSet<&String> = claimed.iter().collect();
    assert_eq!(
        unique_claimed.len(),
        claimed.len(),
        "a job was claimed twice"
    );

    // Every job reached exactly one terminal set; none are lost in
    // queue/, running/, or corrupt/.
    let done: HashSet<String> = spool.done_ids().into_iter().collect();
    let cancelled: HashSet<String> = spool.cancelled_ids().into_iter().collect();
    assert!(
        done.is_disjoint(&cancelled),
        "a job is both done and cancelled"
    );
    for id in &submitted {
        assert!(
            done.contains(id) || cancelled.contains(id),
            "job {id} was lost (neither done nor cancelled)"
        );
    }
    assert_eq!(done.len() + cancelled.len(), submitted.len());
    assert!(spool.pending().is_empty(), "queue/ not drained");
    assert!(spool.running().is_empty(), "running/ not empty");
    assert!(
        std::fs::read_dir(spool.corrupt_dir())
            .map(|d| d.count())
            .unwrap_or(0)
            == 0,
        "jobs were quarantined during the race"
    );

    shutdown.store(true, Ordering::SeqCst);
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}
