//! End-to-end smoke of the HTTP edge, from the wire: malformed decks
//! come back as structured 4xx with the parser's line/column; a real
//! deck runs to completion through the in-process pool; results and
//! event streams fetch; cancel works over HTTP; a flood beyond the
//! admission bound sheds 429s while the service keeps working; the
//! per-client quota engages; and the shipped binary boots, serves, and
//! drains on SIGTERM.

mod common;

use astrx_oblx::json::Value;
use common::*;
use oblx_api::server::{Server, ServerOptions};
use oblx_runtime::pool::{self, PoolOptions};
use oblx_runtime::spool::Spool;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Starts an edge over a fresh spool; `pool_workers > 0` also runs an
/// in-process worker pool on the same shutdown flag.
fn start(
    tag: &str,
    opts: ServerOptions,
    pool_workers: usize,
) -> (
    Server,
    Arc<AtomicBool>,
    Option<std::thread::JoinHandle<pool::RunStats>>,
    std::path::PathBuf,
) {
    let dir = temp_dir(tag);
    let shutdown = Arc::new(AtomicBool::new(false));
    let spool = Spool::open(dir.join("spool")).unwrap();
    let server = Server::start(spool, &opts, Arc::clone(&shutdown)).unwrap();
    let pool_thread = (pool_workers > 0).then(|| {
        let spool = Spool::open(dir.join("spool")).unwrap();
        let flag = Arc::clone(&shutdown);
        std::thread::spawn(move || {
            let opts = PoolOptions {
                workers: pool_workers,
                checkpoint_every: 50,
                drain: false,
                ..PoolOptions::default()
            };
            pool::run(&spool, &opts, &flag)
        })
    });
    (server, shutdown, pool_thread, dir)
}

fn stop(
    server: Server,
    shutdown: &AtomicBool,
    pool_thread: Option<std::thread::JoinHandle<pool::RunStats>>,
    dir: &std::path::Path,
) {
    shutdown.store(true, Ordering::SeqCst);
    server.join();
    if let Some(t) = pool_thread {
        t.join().unwrap();
    }
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn malformed_deck_is_a_structured_422_with_location() {
    let (server, shutdown, pool, dir) = start("parse", ServerOptions::default(), 0);
    let addr = server.addr();

    let body = astrx_oblx::json::ObjBuilder::new()
        .field("name", "bad")
        .field("source", "* a comment line\nthis is not a card\n")
        .build()
        .to_json();
    let resp = post(addr, "/v1/jobs", &body);
    assert_eq!(resp.status, 422, "body: {}", resp.text());
    let err = resp.json();
    let err = err.get("error").expect("error object");
    assert_eq!(err.get("kind").unwrap().as_str(), Some("parse"));
    let line = err.get("line").and_then(Value::as_int).expect("line field");
    assert!(line >= 1, "1-based line, got {line}");
    assert!(
        !err.get("message").unwrap().as_str().unwrap().is_empty(),
        "message is not empty"
    );

    // When the parser knows the column, the edge carries it too.
    let body = astrx_oblx::json::ObjBuilder::new()
        .field("source", "* top\n.spec sr 'unterminated rest\n")
        .build()
        .to_json();
    let resp = post(addr, "/v1/jobs", &body);
    assert_eq!(resp.status, 422);
    let err = resp.json();
    let err = err.get("error").expect("error object");
    assert_eq!(err.get("line").and_then(Value::as_int), Some(2));
    assert_eq!(err.get("column").and_then(Value::as_int), Some(10));

    // Not-JSON and wrong-shape bodies are 400s, not connection drops.
    assert_eq!(post(addr, "/v1/jobs", "not json at all").status, 400);
    assert_eq!(post(addr, "/v1/jobs", "[1,2,3]").status, 400);
    assert_eq!(
        post(addr, "/v1/jobs", r#"{"source":"x","typo_field":1}"#).status,
        400
    );
    // An unknown process deck is a 422 with its own kind.
    let ota = astrx_oblx::bench_suite::by_name("Simple OTA").unwrap();
    let body = astrx_oblx::json::ObjBuilder::new()
        .field("source", ota.source)
        .field("deck", "no-such-deck")
        .build()
        .to_json();
    let resp = post(addr, "/v1/jobs", &body);
    assert_eq!(resp.status, 422);
    assert_eq!(
        resp.json()
            .get("error")
            .unwrap()
            .get("kind")
            .unwrap()
            .as_str(),
        Some("unknown_deck")
    );
    // Named-benchmark submits validate too.
    assert_eq!(
        post(addr, "/v1/jobs", r#"{"bench":"No Such Bench"}"#).status,
        400
    );
    assert_eq!(
        post(addr, "/v1/jobs", r#"{"bench":"Simple OTA","source":"x"}"#).status,
        400
    );
    // Nothing malformed ever entered the queue.
    let spool = Spool::open(dir.join("spool")).unwrap();
    assert!(
        spool.pending().is_empty(),
        "edge validation kept the queue clean"
    );
    stop(server, &shutdown, pool, &dir);
}

#[test]
fn lifecycle_submit_run_result_events_over_http() {
    // Quotas off: the test polls faster than any sane client budget.
    let opts = ServerOptions {
        quota_rate: 0.0,
        ..ServerOptions::default()
    };
    let (server, shutdown, pool, dir) = start("life", opts, 2);
    let addr = server.addr();

    let resp = post(addr, "/v1/jobs", &ota_submit_body("ota-http", 2, 3000));
    assert_eq!(resp.status, 201, "body: {}", resp.text());
    let created = resp.json();
    let id = created.get("id").unwrap().as_str().unwrap().to_string();
    assert_eq!(created.get("seeds").unwrap().as_int(), Some(2));

    // Result before completion is a 409, not a 404 and not an empty 200.
    let early = get(addr, &format!("/v1/jobs/{id}/result"));
    if early.status == 200 {
        // The pool can legitimately already be done on a fast machine.
    } else {
        assert_eq!(early.status, 409);
        assert_eq!(
            early
                .json()
                .get("error")
                .unwrap()
                .get("kind")
                .unwrap()
                .as_str(),
            Some("not_ready")
        );
    }

    let state = wait_for_state(addr, &id, &["done"], 120);
    assert_eq!(state.get("status").unwrap().as_str(), Some("ok"));

    let result = get(addr, &format!("/v1/jobs/{id}/result"));
    assert_eq!(result.status, 200);
    let record = result.json();
    assert_eq!(record.get("status").unwrap().as_str(), Some("ok"));
    assert_eq!(record.get("format").unwrap().as_str(), Some("oblx-result"));

    // The event log tells the whole story, as NDJSON over one chunked
    // response that ends because the job is terminal.
    let events = get(addr, &format!("/v1/jobs/{id}/events"));
    assert_eq!(events.status, 200);
    assert_eq!(events.header("transfer-encoding"), Some("chunked"));
    let kinds: Vec<String> = astrx_oblx::json::parse_lines(&events.text())
        .iter()
        .filter_map(|e| e.get("event").and_then(Value::as_str).map(str::to_string))
        .collect();
    for expected in ["submitted", "started", "seed_done", "done"] {
        assert!(
            kinds.iter().any(|k| k == expected),
            "missing `{expected}` in {kinds:?}"
        );
    }

    // Unknown jobs are clean 404s on every job route.
    assert_eq!(get(addr, "/v1/jobs/j999999").status, 404);
    assert_eq!(get(addr, "/v1/jobs/j999999/result").status, 404);
    assert_eq!(get(addr, "/v1/jobs/j999999/events").status, 404);
    assert_eq!(
        request(addr, "DELETE", "/v1/jobs/j999999", None).status,
        404
    );

    // The metrics endpoint serves the live telemetry snapshot.
    let metrics = get(addr, "/v1/metrics");
    assert_eq!(metrics.status, 200);
    assert!(metrics.json().get("counters").is_some(), "snapshot shape");
    stop(server, &shutdown, pool, &dir);
}

#[test]
fn cancel_over_http_reaches_the_cancelled_state() {
    let opts = ServerOptions {
        quota_rate: 0.0,
        ..ServerOptions::default()
    };
    let (server, shutdown, pool, dir) = start("cancel", opts, 2);
    let addr = server.addr();

    // Plenty of budget so the job is still in flight when the DELETE
    // lands; the pool's checkpoint interval (50 moves) bounds how long
    // a running seed takes to notice the tombstone.
    let resp = post(addr, "/v1/jobs", &ota_submit_body("ota-cancel", 8, 500_000));
    assert_eq!(resp.status, 201);
    let id = resp.json().get("id").unwrap().as_str().unwrap().to_string();
    wait_for_state(addr, &id, &["queued", "running"], 30);

    let del = request(addr, "DELETE", &format!("/v1/jobs/{id}"), None);
    assert_eq!(del.status, 200, "body: {}", del.text());
    assert_eq!(del.json().get("cancelled").unwrap().as_bool(), Some(true));

    let state = wait_for_state(addr, &id, &["cancelled"], 120);
    assert_eq!(state.get("state").unwrap().as_str(), Some("cancelled"));

    // The result store serves the cancellation record.
    let result = get(addr, &format!("/v1/jobs/{id}/result"));
    assert_eq!(result.status, 200);
    assert_eq!(
        result.json().get("status").unwrap().as_str(),
        Some("cancelled")
    );

    // Cancelling again is idempotent, not an error.
    let again = request(addr, "DELETE", &format!("/v1/jobs/{id}"), None);
    assert_eq!(again.status, 200);
    assert_eq!(
        again.json().get("phase").unwrap().as_str(),
        Some("already_cancelled")
    );

    // And the event log recorded the terminal transition.
    let events = get(addr, &format!("/v1/jobs/{id}/events?follow=0"));
    assert!(
        events.text().contains("job_cancelled"),
        "events: {}",
        events.text()
    );
    stop(server, &shutdown, pool, &dir);
}

#[test]
fn keep_alive_serves_many_requests_then_caps_the_connection() {
    let opts = ServerOptions {
        quota_rate: 0.0,
        keepalive_max_requests: 3,
        ..ServerOptions::default()
    };
    let (server, shutdown, pool, dir) = start("keepalive", opts, 0);
    let addr = server.addr();

    let mut conn = std::net::TcpStream::connect(addr).unwrap();
    conn.set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    // Requests 1 and 2 persist; request 3 hits the per-connection cap
    // and the server announces the close.
    let r1 = request_on(&mut conn, "GET", "/v1/metrics");
    assert_eq!(r1.status, 200);
    assert_eq!(r1.header("connection"), Some("keep-alive"));
    let r2 = request_on(&mut conn, "GET", "/v1/metrics");
    assert_eq!(r2.status, 200);
    assert_eq!(r2.header("connection"), Some("keep-alive"));
    let r3 = request_on(&mut conn, "GET", "/v1/metrics");
    assert_eq!(r3.status, 200);
    assert_eq!(r3.header("connection"), Some("close"));
    // And the socket really is closed now.
    use std::io::Read as _;
    let mut rest = Vec::new();
    assert_eq!(conn.read_to_end(&mut rest).unwrap(), 0, "EOF after cap");

    // A client that asks for close gets close, cap or no cap.
    let r = get(addr, "/v1/metrics");
    assert_eq!(r.status, 200);
    assert_eq!(r.header("connection"), Some("close"));

    // An idle keep-alive connection is reclaimed by the idle timeout.
    let opts = ServerOptions {
        quota_rate: 0.0,
        keepalive_idle_timeout: Duration::from_millis(100),
        ..ServerOptions::default()
    };
    let (server2, shutdown2, pool2, dir2) = start("keepalive-idle", opts, 0);
    let mut conn = std::net::TcpStream::connect(server2.addr()).unwrap();
    conn.set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let r = request_on(&mut conn, "GET", "/v1/metrics");
    assert_eq!(r.header("connection"), Some("keep-alive"));
    let mut rest = Vec::new();
    assert_eq!(
        conn.read_to_end(&mut rest).unwrap(),
        0,
        "idle connection closed by the server"
    );
    stop(server2, &shutdown2, pool2, &dir2);
    stop(server, &shutdown, pool, &dir);
}

#[test]
fn cluster_view_reports_hosts_and_worker_state() {
    let opts = ServerOptions {
        quota_rate: 0.0,
        ..ServerOptions::default()
    };
    let (server, shutdown, pool, dir) = start("cluster", opts, 1);
    let addr = server.addr();

    // The in-process pool announces itself with a host heartbeat and a
    // worker snapshot shortly after starting; poll until the cluster
    // view reflects it.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    let v = loop {
        let resp = get(addr, "/v1/cluster");
        assert_eq!(resp.status, 200);
        let v = resp.json();
        // The heartbeat and the worker snapshot are separate atomic
        // writes; wait until both have landed.
        let seen = v.get("hosts").and_then(Value::as_arr).is_some_and(|hosts| {
            hosts.iter().any(|h| {
                h.get("worker_state")
                    .and_then(Value::as_arr)
                    .is_some_and(|rows| !rows.is_empty())
            })
        });
        if seen {
            break v;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "no host appeared in /v1/cluster within 30s"
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    let hosts = v.get("hosts").and_then(Value::as_arr).unwrap();
    assert_eq!(hosts.len(), 1, "one daemon over this spool");
    let h = &hosts[0];
    assert!(!h.get("host").and_then(Value::as_str).unwrap().is_empty());
    assert_eq!(h.get("workers").and_then(Value::as_int), Some(1));
    let rows = h.get("worker_state").and_then(Value::as_arr).unwrap();
    assert_eq!(rows.len(), 1, "one worker row for the one worker");
    assert!(rows[0].get("busy").and_then(Value::as_bool).is_some());
    assert!(v.get("leases").and_then(Value::as_int).is_some());

    stop(server, &shutdown, pool, &dir);
}

#[test]
fn flood_beyond_admission_sheds_429_and_the_service_survives() {
    let opts = ServerOptions {
        threads: 1,
        admission_capacity: 2,
        quota_rate: 0.0, // isolate admission from the quota limiter
        read_timeout: Duration::from_millis(300),
        ..ServerOptions::default()
    };
    let (server, shutdown, pool, dir) = start("flood", opts, 0);
    let addr = server.addr();

    // Open a burst of connections that send nothing: each occupies the
    // single worker for a read-timeout, so the admission queue fills
    // and the rest must be shed at the door with 429.
    let mut conns = Vec::new();
    for _ in 0..12 {
        let c = std::net::TcpStream::connect(addr).unwrap();
        c.set_read_timeout(Some(Duration::from_millis(500)))
            .unwrap();
        conns.push(c);
    }
    let mut shed = 0;
    for mut c in conns {
        use std::io::Read as _;
        let mut buf = Vec::new();
        let _ = c.read_to_end(&mut buf);
        if !buf.is_empty() {
            let text = String::from_utf8_lossy(&buf);
            if text.starts_with("HTTP/1.1 429") {
                assert!(text.contains("admission"), "shed body names the cause");
                shed += 1;
            }
        }
    }
    assert!(shed >= 1, "at least some of the flood was shed with 429");

    // The flood is over; the edge still answers real requests.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        let resp = get(addr, "/v1/metrics");
        if resp.status == 200 {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "edge never recovered");
        std::thread::sleep(Duration::from_millis(50));
    }
    stop(server, &shutdown, pool, &dir);
}

#[test]
fn quota_limiter_engages_per_client() {
    let opts = ServerOptions {
        quota_rate: 1.0,
        quota_burst: 2.0,
        ..ServerOptions::default()
    };
    let (server, shutdown, pool, dir) = start("quota", opts, 0);
    let addr = server.addr();

    // The burst allowance passes, then the bucket is dry.
    assert_eq!(get(addr, "/v1/metrics").status, 200);
    assert_eq!(get(addr, "/v1/metrics").status, 200);
    let throttled = get(addr, "/v1/metrics");
    assert_eq!(throttled.status, 429);
    assert_eq!(
        throttled
            .json()
            .get("error")
            .unwrap()
            .get("kind")
            .unwrap()
            .as_str(),
        Some("quota")
    );
    stop(server, &shutdown, pool, &dir);
}

#[test]
#[cfg(unix)]
fn the_binary_boots_serves_and_drains_on_sigterm() {
    use std::io::BufRead as _;
    let dir = temp_dir("bin");
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_oblx-api"))
        .args(["serve", "--dir"])
        .arg(dir.join("spool"))
        .args(["--addr", "127.0.0.1:0", "--no-pool", "--rate", "0"])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("oblx-api spawns");
    let stdout = child.stdout.take().unwrap();
    let mut lines = std::io::BufReader::new(stdout).lines();
    let addr: std::net::SocketAddr = loop {
        let line = lines.next().expect("stdout open").expect("stdout readable");
        if let Some(rest) = line.strip_prefix("listening on ") {
            break rest.parse().expect("printed address parses");
        }
    };

    let resp = get(addr, "/v1/metrics");
    assert_eq!(resp.status, 200);
    let resp = post(addr, "/v1/jobs", &ota_submit_body("bin-job", 1, 500));
    assert_eq!(resp.status, 201);

    let kill = std::process::Command::new("kill")
        .arg(child.id().to_string())
        .status()
        .unwrap();
    assert!(kill.success());
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    let status = loop {
        if let Some(s) = child.try_wait().unwrap() {
            break s;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "binary ignored SIGTERM"
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    assert!(status.success(), "graceful exit 0, got {status}");
    let _ = std::fs::remove_dir_all(&dir);
}
