//! The equation-based synthesis baseline (OPASYN-class).
//!
//! A hand-derived square-law design procedure for the Simple OTA: the
//! kind of circuit-specific knowledge that equation-based tools encode
//! in thousands of lines of code, here distilled to its textbook core.
//! The procedure *designs* quickly and *predicts* its performance with
//! the same first-order equations it designed with — and that
//! prediction is what Fig. 3 shows drifting up to ~200% away from a
//! detailed simulator, because `I = K'W/2L·(Vgs−Vt)²` is simply not the
//! truth for real devices (paper §II "Accuracy").

use astrx_oblx::oblx::OblxState;
use astrx_oblx::CompiledProblem;

/// Specification inputs to the square-law design procedure.
#[derive(Debug, Clone, Copy)]
pub struct OtaSpec {
    /// Load capacitance (F).
    pub cl: f64,
    /// Required gain–bandwidth product (Hz).
    pub gbw: f64,
    /// Required slew rate (V/s).
    pub slew: f64,
    /// Supply voltage (V).
    pub vdd: f64,
}

impl Default for OtaSpec {
    fn default() -> Self {
        OtaSpec {
            cl: 1e-12,
            gbw: 50e6,
            slew: 10e6,
            vdd: 5.0,
        }
    }
}

/// First-order process constants the equations assume (level-1-style).
#[derive(Debug, Clone, Copy)]
pub struct SquareLawProcess {
    /// NMOS transconductance parameter (A/V²).
    pub kpn: f64,
    /// PMOS transconductance parameter (A/V²).
    pub kpp: f64,
    /// NMOS threshold (V).
    pub vtn: f64,
    /// PMOS threshold magnitude (V).
    pub vtp: f64,
    /// Channel-length modulation (1/V), both polarities.
    pub lambda: f64,
    /// Drawn channel length used throughout (m).
    pub l: f64,
}

impl Default for SquareLawProcess {
    fn default() -> Self {
        // The designer's mental model of the 2µ process — close to the
        // level-1 deck, deliberately blind to the BSIM effects of the
        // deck actually used for verification.
        SquareLawProcess {
            kpn: 5.2e-5,
            kpp: 1.8e-5,
            vtn: 0.75,
            vtp: 0.85,
            lambda: 0.04,
            l: 4e-6,
        }
    }
}

/// The output of the design procedure: sized devices plus the
/// procedure's *own* performance predictions.
#[derive(Debug, Clone)]
pub struct EquationDesign {
    /// Input-pair width (m).
    pub w1: f64,
    /// Load-mirror width (m).
    pub w3: f64,
    /// Tail width (m).
    pub w5: f64,
    /// Common channel length (m).
    pub l: f64,
    /// Tail bias current (A).
    pub ib: f64,
    /// Predicted `(goal name, value)` pairs using the same square-law
    /// equations (goal names match the Simple OTA benchmark).
    pub predicted: Vec<(String, f64)>,
}

impl EquationDesign {
    /// Converts to an OBLX state vector for the Simple OTA benchmark
    /// problem, so the design can be verified by the same simulator
    /// path. Node voltages are zeroed — the verifier re-solves dc.
    ///
    /// # Panics
    ///
    /// Panics if `compiled` is not the Simple OTA benchmark (wrong
    /// variable list).
    pub fn to_state(&self, compiled: &CompiledProblem) -> OblxState {
        let names: Vec<&str> = compiled.user_vars.iter().map(|v| v.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["w1", "l1", "w3", "l3", "w5", "l5", "ib"],
            "equation baseline only fits the Simple OTA benchmark"
        );
        let clamp = |i: usize, v: f64| -> f64 {
            let d = &compiled.user_vars[i];
            v.clamp(d.min, d.max)
        };
        OblxState {
            user: vec![
                clamp(0, self.w1),
                clamp(1, self.l),
                clamp(2, self.w3),
                clamp(3, self.l),
                clamp(4, self.w5),
                clamp(5, self.l),
                clamp(6, self.ib),
            ],
            nodes: vec![0.0; compiled.node_vars.len()],
        }
    }
}

/// Runs the square-law design procedure for the Simple OTA.
///
/// Textbook flow: the slew rate sets the tail current, the GBW sets the
/// input-pair `gm`, the square law inverts `gm` into `W/L`, and mirrors
/// are sized for headroom. Gain is predicted as
/// `gm1/(gds2 + gds4) = gm1/((λn+λp)·Id/2)`.
pub fn design_simple_ota(spec: &OtaSpec, process: &SquareLawProcess) -> EquationDesign {
    // Tail current from slew rate into the load (with 50% margin).
    let ib = (1.5 * spec.slew * spec.cl).max(1e-6);
    let id1 = ib / 2.0;

    // Input pair gm from the GBW requirement (gm = 2π·GBW·Cl).
    let gm1 = 2.0 * std::f64::consts::PI * spec.gbw * spec.cl;
    // Square law inversion: gm² = 2·kp·(W/L)·Id.
    let wl1 = (gm1 * gm1 / (2.0 * process.kpn * id1)).max(0.5);
    let w1 = wl1 * process.l;

    // Load mirror: pick |Vov| = 0.4 V for swing headroom.
    let vov_p: f64 = 0.4;
    let wl3 = (2.0 * id1 / (process.kpp * vov_p * vov_p)).max(0.5);
    let w3 = wl3 * process.l;

    // Tail device: Vov = 0.3 V at the full tail current.
    let vov_t: f64 = 0.3;
    let wl5 = (2.0 * ib / (process.kpn * vov_t * vov_t)).max(0.5);
    let w5 = wl5 * process.l;

    // First-order predictions with the *same* equations.
    let gds = process.lambda * id1;
    let a0 = gm1 / (2.0 * gds);
    let vov1 = (2.0 * id1 / (process.kpn * wl1)).sqrt();
    let swing = spec.vdd - vov_p - vov1 - vov_t - 0.4;
    let predicted = vec![
        ("adm".to_string(), 20.0 * a0.abs().log10()),
        (
            "gbw".to_string(),
            gm1 / (2.0 * std::f64::consts::PI * spec.cl),
        ),
        ("pm".to_string(), 90.0),
        ("psrrvss".to_string(), 20.0 * a0.abs().log10() - 6.0),
        ("psrrvdd".to_string(), 20.0 * a0.abs().log10() - 6.0),
        ("swing".to_string(), swing),
        ("sr".to_string(), ib / spec.cl),
        ("pwr".to_string(), 2.0 * ib * spec.vdd),
        (
            "area".to_string(),
            (2.0 * w1 + 2.0 * w3 + 2.0 * w5) * process.l,
        ),
    ];

    EquationDesign {
        w1,
        w3,
        w5,
        l: process.l,
        ib,
        predicted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use astrx_oblx::bench_suite;
    use astrx_oblx::verify::verify_design;

    #[test]
    fn design_satisfies_its_own_equations() {
        let spec = OtaSpec::default();
        let d = design_simple_ota(&spec, &SquareLawProcess::default());
        assert!(d.ib >= spec.slew * spec.cl);
        assert!(d.w1 > 0.0 && d.w3 > 0.0 && d.w5 > 0.0);
        // Self-predicted GBW matches the spec by construction.
        let gbw = d
            .predicted
            .iter()
            .find(|(n, _)| n == "gbw")
            .map(|(_, v)| *v)
            .unwrap();
        assert!((gbw - spec.gbw).abs() / spec.gbw < 1e-9);
    }

    #[test]
    fn equation_predictions_disagree_with_simulator() {
        // The §II accuracy claim: an equation-based design's self-
        // predictions diverge substantially from a detailed simulator
        // using real (BSIM-style) models — while the design itself is
        // still a workable circuit.
        let b = bench_suite::simple_ota();
        let compiled = astrx_oblx::astrx::compile(b.problem().unwrap()).unwrap();
        let d = design_simple_ota(&OtaSpec::default(), &SquareLawProcess::default());
        let state = d.to_state(&compiled);
        let verified =
            verify_design(&compiled, &state, &d.predicted).expect("design must simulate");
        // Gain prediction error: the paper cites up to 200%; require a
        // clearly visible gap (> 15%) on at least one small-signal spec.
        let mut worst: f64 = 0.0;
        for (name, pred, sim) in &verified.rows {
            if name == "adm" || name == "gbw" {
                let rel = (pred - sim).abs() / sim.abs().max(1e-12);
                worst = worst.max(rel);
            }
        }
        assert!(
            worst > 0.15,
            "square-law predictions should visibly miss: worst rel err {worst}"
        );
    }
}
