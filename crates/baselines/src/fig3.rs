//! Fig. 3 data: complexity, prediction error, and first-time design
//! effort for three classes of synthesis approaches.
//!
//! The literature coordinates are the qualitative positions the paper
//! plots for prior tools (effort axis includes preparatory time; the
//! paper equates 1000 lines of circuit-specific code to a month). The
//! ASTRX/OBLX and baseline points are *measured* by the examples and
//! benches and appended to these.

/// Which methodological class a point belongs to (the three clusters of
/// Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MethodClass {
    /// Equation-based with hand-derived equations: accurate-ish, huge
    /// preparatory effort.
    EquationBased,
    /// Equation-based with aggressive simplification: quick but
    /// inaccurate.
    SimplifiedEquation,
    /// ASTRX/OBLX: simulation-quality accuracy, hours of preparation.
    AstrxOblx,
}

impl MethodClass {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            MethodClass::EquationBased => "equation-based (derived)",
            MethodClass::SimplifiedEquation => "equation-based (simplified)",
            MethodClass::AstrxOblx => "ASTRX/OBLX",
        }
    }
}

/// One point of the Fig. 3 landscape.
#[derive(Debug, Clone)]
pub struct Fig3Point {
    /// Tool or method name.
    pub tool: &'static str,
    /// Method class (cluster).
    pub class: MethodClass,
    /// Circuit complexity: devices + designed variables.
    pub complexity: usize,
    /// Worst-case prediction error vs a detailed simulator (%).
    pub error_pct: f64,
    /// First-time design effort: preparatory + CPU time (hours).
    pub effort_hours: f64,
}

/// The literature cluster coordinates quoted by the paper's Fig. 3
/// (positions are as plotted — order-of-magnitude placements, not
/// precise measurements).
pub fn fig3_points() -> Vec<Fig3Point> {
    vec![
        // Right-hand cluster: months-to-years of preparatory effort,
        // reasonable accuracy.
        Fig3Point {
            tool: "OASYS",
            class: MethodClass::EquationBased,
            complexity: 30,
            error_pct: 20.0,
            effort_hours: 700.0, // months of hierarchy/plan derivation
        },
        Fig3Point {
            tool: "OPASYN",
            class: MethodClass::EquationBased,
            complexity: 24,
            error_pct: 15.0,
            effort_hours: 350.0, // "weeks" for a textbook design [7]
        },
        Fig3Point {
            tool: "industrial equation-based [3]",
            class: MethodClass::EquationBased,
            complexity: 40,
            error_pct: 10.0,
            effort_hours: 4000.0, // designer-years
        },
        // Left-hand cluster: little preparation, poor prediction.
        Fig3Point {
            tool: "STAIC",
            class: MethodClass::SimplifiedEquation,
            complexity: 20,
            error_pct: 200.0,
            effort_hours: 40.0,
        },
        Fig3Point {
            tool: "ARIADNE",
            class: MethodClass::SimplifiedEquation,
            complexity: 18,
            error_pct: 120.0,
            effort_hours: 60.0,
        },
    ]
}

/// Effort proxy used for measured ASTRX/OBLX points: an afternoon of
/// description writing (the paper's claim) plus the measured CPU time.
pub fn astrx_effort_hours(description_lines: usize, cpu_hours: f64) -> f64 {
    // ~20 lines of familiar SPICE-style input per hour of careful
    // design-entry work, floor of one hour.
    (description_lines as f64 / 20.0).max(1.0) + cpu_hours
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clusters_are_separated() {
        let pts = fig3_points();
        let eq_effort: f64 = pts
            .iter()
            .filter(|p| p.class == MethodClass::EquationBased)
            .map(|p| p.effort_hours)
            .fold(f64::INFINITY, f64::min);
        let simp_err: f64 = pts
            .iter()
            .filter(|p| p.class == MethodClass::SimplifiedEquation)
            .map(|p| p.error_pct)
            .fold(f64::INFINITY, f64::min);
        // Derived-equation tools: ≥ weeks of effort. Simplified tools:
        // ≥ 100% error. That's the gap ASTRX/OBLX sits in.
        assert!(eq_effort > 300.0);
        assert!(simp_err > 100.0);
        let astrx = astrx_effort_hours(60, 2.0);
        assert!(astrx < 10.0, "hours, not months: {astrx}");
    }

    #[test]
    fn labels_exist() {
        for p in fig3_points() {
            assert!(!p.class.label().is_empty());
            assert!(!p.tool.is_empty());
            assert!(p.complexity > 0);
        }
    }
}
