//! The DELIGHT.SPICE-class baseline: gradient-based local optimization
//! over the full simulator.
//!
//! Every cost evaluation performs a *complete Newton–Raphson bias
//! solve* plus direct ac measurements — exactly the per-iteration price
//! that forces simulation-based optimizers to use local methods with
//! few iterations, which in turn makes them starting-point-dependent
//! (paper §II "Efficiency/Starting Point Sensitivity").

use astrx_oblx::cost::normalized;
use astrx_oblx::oblx::OblxState;
use astrx_oblx::verify::verify_design;
use astrx_oblx::CompiledProblem;
use oblx_netlist::SpecKind;

/// Options for the local optimizer.
#[derive(Debug, Clone, Copy)]
pub struct LocalOptions {
    /// Maximum gradient iterations.
    pub max_iters: usize,
    /// Relative finite-difference step in log-variable space.
    pub fd_step: f64,
    /// Initial line-search step in log space.
    pub step0: f64,
    /// Convergence tolerance on the cost decrease.
    pub tol: f64,
}

impl Default for LocalOptions {
    fn default() -> Self {
        LocalOptions {
            max_iters: 40,
            fd_step: 0.02,
            step0: 0.25,
            tol: 1e-5,
        }
    }
}

/// Result of a local optimization run.
#[derive(Debug, Clone)]
pub struct LocalResult {
    /// Final user-variable values.
    pub user: Vec<f64>,
    /// Final penalty cost.
    pub cost: f64,
    /// Full-simulation evaluations spent.
    pub evaluations: usize,
    /// `true` when the run stalled (no descent direction) rather than
    /// exhausting iterations.
    pub converged: bool,
}

/// Evaluates the penalty cost of a user-variable assignment via the
/// **full simulator** (Newton bias solve + ac measurements): the
/// DELIGHT-style objective. Returns `None` when the bias fails to
/// solve or a measurement is impossible — the hard cliff that local
/// optimizers must be primed to avoid.
pub fn simulator_cost(compiled: &CompiledProblem, user: &[f64]) -> Option<(f64, Vec<f64>)> {
    let state = OblxState {
        user: user.to_vec(),
        nodes: vec![0.0; compiled.node_vars.len()],
    };
    let verified = verify_design(compiled, &state, &[]).ok()?;
    let mut cost = 0.0;
    let mut measured = Vec::with_capacity(verified.rows.len());
    for (goal, (_, _, sim)) in compiled.problem.specs.iter().zip(verified.rows.iter()) {
        measured.push(*sim);
        let z = normalized(goal, *sim);
        match goal.kind {
            SpecKind::Objective => cost += z.max(-3.0),
            SpecKind::Constraint => cost += 10.0 * z.clamp(0.0, 100.0),
        }
    }
    if !cost.is_finite() {
        return None;
    }
    Some((cost, measured))
}

/// Runs steepest-descent with backtracking line search in log-variable
/// space, from `start` (user-variable values).
pub fn local_optimize(
    compiled: &CompiledProblem,
    start: &[f64],
    opts: &LocalOptions,
) -> LocalResult {
    let clamp = |i: usize, v: f64| -> f64 {
        let d = &compiled.user_vars[i];
        v.clamp(d.min, d.max)
    };
    let mut evals = 0usize;
    let mut eval = |user: &[f64]| -> f64 {
        evals += 1;
        match simulator_cost(compiled, user) {
            Some((c, _)) => c,
            None => 1e6,
        }
    };

    let n = start.len();
    let mut x: Vec<f64> = start
        .iter()
        .enumerate()
        .map(|(i, &v)| clamp(i, v))
        .collect();
    let mut fx = eval(&x);
    let mut converged = false;

    for _ in 0..opts.max_iters {
        // Finite-difference gradient in log space (all benchmark user
        // variables are positive).
        let mut grad = vec![0.0; n];
        for i in 0..n {
            let mut xp = x.clone();
            xp[i] = clamp(i, x[i] * (1.0 + opts.fd_step));
            let mut xm = x.clone();
            xm[i] = clamp(i, x[i] / (1.0 + opts.fd_step));
            let h = (xp[i] / xm[i]).ln();
            if h.abs() < 1e-12 {
                continue;
            }
            grad[i] = (eval(&xp) - eval(&xm)) / h;
        }
        let gnorm = grad.iter().map(|g| g * g).sum::<f64>().sqrt();
        if gnorm < 1e-12 {
            converged = true;
            break;
        }
        // Backtracking line search along −grad in log space.
        let mut step = opts.step0;
        let mut improved = false;
        for _ in 0..8 {
            let cand: Vec<f64> = x
                .iter()
                .enumerate()
                .map(|(i, &v)| clamp(i, v * (-step * grad[i] / gnorm).exp()))
                .collect();
            let fc = eval(&cand);
            if fc < fx - opts.tol {
                x = cand;
                fx = fc;
                improved = true;
                break;
            }
            step *= 0.5;
        }
        if !improved {
            converged = true;
            break;
        }
    }

    LocalResult {
        user: x,
        cost: fx,
        evaluations: evals,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use astrx_oblx::bench_suite;

    fn compiled() -> CompiledProblem {
        astrx_oblx::astrx::compile(bench_suite::simple_ota().problem().unwrap()).unwrap()
    }

    #[test]
    fn simulator_cost_evaluates_default_sizing() {
        let c = compiled();
        let user = c.initial_user_values();
        let (cost, measured) = simulator_cost(&c, &user).expect("bias must solve");
        assert!(cost.is_finite());
        assert_eq!(measured.len(), c.problem.specs.len());
    }

    #[test]
    fn local_optimizer_descends() {
        let c = compiled();
        let start = c.initial_user_values();
        let (f0, _) = simulator_cost(&c, &start).unwrap();
        let res = local_optimize(
            &c,
            &start,
            &LocalOptions {
                max_iters: 6,
                ..LocalOptions::default()
            },
        );
        assert!(res.cost <= f0, "descent: {f0} -> {}", res.cost);
        assert!(res.evaluations > 10);
    }

    #[test]
    fn starting_point_sensitivity() {
        // Two starting points, two different local answers — the §II
        // argument for why local optimization is not synthesis.
        let c = compiled();
        let opts = LocalOptions {
            max_iters: 8,
            ..LocalOptions::default()
        };
        let a = local_optimize(&c, &c.initial_user_values(), &opts);
        // A second start: everything near the small end of its range.
        let start_b: Vec<f64> = c
            .user_vars
            .iter()
            .map(|v| (v.min * 2.0).min(v.max))
            .collect();
        let b = local_optimize(&c, &start_b, &opts);
        let spread = (a.cost - b.cost).abs() / a.cost.abs().max(1e-9);
        assert!(
            spread > 0.05,
            "local optima should differ across starts: {} vs {}",
            a.cost,
            b.cost
        );
    }
}
