//! Prior-approach baselines for the Fig. 3 comparison.
//!
//! The paper situates ASTRX/OBLX between two failure modes of earlier
//! synthesis work:
//!
//! * **Equation-based synthesis** ([`equation`]): minutes of CPU time,
//!   but the circuit equations are hand-derived from simplified device
//!   models, so predictions can be off by ~200% against a real
//!   simulator — and each new topology costs weeks-to-years of
//!   derivation effort.
//! * **Simulation-based local optimization** ([`delight`],
//!   DELIGHT.SPICE-style): accurate evaluation, but the gradient
//!   optimizer needs a good starting point and gets trapped in local
//!   minima, which is what blocked the jump from *optimization* to
//!   *synthesis* for a decade (paper §II).
//!
//! Both baselines run against the same benchmark descriptions and the
//! same reference simulator as OBLX, so the comparison isolates the
//! *method*.

pub mod delight;
pub mod equation;
pub mod fig3;

pub use delight::{local_optimize, simulator_cost, LocalOptions, LocalResult};
pub use equation::{design_simple_ota, EquationDesign, OtaSpec};
pub use fig3::{fig3_points, Fig3Point, MethodClass};
