//! MOS capacitance models: Meyer channel-charge partitioning plus
//! depletion junction capacitances.

use crate::mos_iv::{MosParams, RawRegion};

/// The five small-signal capacitances of a MOS device (normalized frame).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MosCaps {
    /// Gate–source capacitance (F).
    pub cgs: f64,
    /// Gate–drain capacitance (F).
    pub cgd: f64,
    /// Gate–bulk capacitance (F).
    pub cgb: f64,
    /// Bulk–drain junction capacitance (F).
    pub cbd: f64,
    /// Bulk–source junction capacitance (F).
    pub cbs: f64,
}

/// Meyer gate-capacitance partitioning by region, with overlap
/// capacitances added.
pub(crate) fn meyer_caps(
    p: &MosParams,
    w: f64,
    l: f64,
    region: RawRegion,
    vds: f64,
    vdsat: f64,
) -> (f64, f64, f64) {
    let leff = p.leff(l);
    let cox = p.cox() * w * leff;
    let ov_s = p.cgso * w;
    let ov_d = p.cgdo * w;
    let ov_b = p.cgbo * l;
    match region {
        RawRegion::Cutoff => (ov_s, ov_d, cox + ov_b),
        RawRegion::Triode => {
            // Smoothly split the channel charge as vds approaches vdsat.
            let x = if vdsat > 0.0 {
                (vds / vdsat).clamp(0.0, 1.0)
            } else {
                1.0
            };
            // vds = 0: 1/2–1/2 split; vds → vdsat: 2/3–~0 split.
            let cgs = cox * (0.5 + x / 6.0);
            let cgd = cox * (0.5 - x / 2.0).max(0.0);
            (cgs + ov_s, cgd + ov_d, ov_b)
        }
        RawRegion::Saturation => (cox * 2.0 / 3.0 + ov_s, ov_d, ov_b),
    }
}

/// Reverse-bias depletion capacitance `c0/(1 − v/pb)^m`, with the SPICE
/// forward-bias linearization above `fc·pb` so the value stays finite and
/// continuous for any proposed voltage.
pub(crate) fn junction_cap(c0: f64, v: f64, pb: f64, m: f64) -> f64 {
    const FC: f64 = 0.5;
    let vlim = FC * pb;
    if v < vlim {
        c0 / (1.0 - v / pb).powf(m)
    } else {
        // Linear extension with matching value and slope at v = vlim.
        let f = 1.0 - FC;
        let c_at = c0 / f.powf(m);
        let dc = c0 * m / (pb * f.powf(m + 1.0));
        c_at + dc * (v - vlim)
    }
}

/// Drain/source junction capacitance for a diffusion of width `w`:
/// bottom plate `cj·(w·ldif)` plus sidewall `cjsw·(2·ldif + w)`, both
/// voltage-dependent. `vbx` is the bulk-to-diffusion voltage (negative in
/// normal operation).
pub(crate) fn diffusion_cap(p: &MosParams, w: f64, vbx: f64) -> f64 {
    let area = w * p.ldif;
    let perim = 2.0 * p.ldif + w;
    junction_cap(p.cj * area, vbx, p.pb, p.mj) + junction_cap(p.cjsw * perim, vbx, p.pb, p.mjsw)
}

/// Full capacitance evaluation in the normalized frame.
pub(crate) fn mos_caps(
    p: &MosParams,
    w: f64,
    l: f64,
    region: RawRegion,
    vds: f64,
    vdsat: f64,
    vbs: f64,
) -> MosCaps {
    let (cgs, cgd, cgb) = meyer_caps(p, w, l, region, vds, vdsat);
    let vbd = vbs - vds;
    MosCaps {
        cgs,
        cgd,
        cgb,
        cbd: diffusion_cap(p, w, vbd),
        cbs: diffusion_cap(p, w, vbs),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> MosParams {
        MosParams::default()
    }

    #[test]
    fn saturation_meyer_two_thirds() {
        let params = p();
        let w = 10e-6;
        let l = 2e-6;
        let cox = params.cox() * w * params.leff(l);
        let (cgs, cgd, _) = meyer_caps(&params, w, l, RawRegion::Saturation, 2.0, 0.5);
        assert!((cgs - (2.0 / 3.0 * cox + params.cgso * w)).abs() < 1e-18);
        assert!((cgd - params.cgdo * w).abs() < 1e-20);
    }

    #[test]
    fn cutoff_gate_cap_goes_to_bulk() {
        let params = p();
        let (cgs, cgd, cgb) = meyer_caps(&params, 10e-6, 2e-6, RawRegion::Cutoff, 0.0, 0.0);
        assert!(cgb > cgs && cgb > cgd);
    }

    #[test]
    fn triode_split_is_balanced_at_zero_vds() {
        let params = p();
        let w = 10e-6;
        let l = 2e-6;
        let (cgs, cgd, _) = meyer_caps(&params, w, l, RawRegion::Triode, 0.0, 1.0);
        // Remove overlaps before comparing the split.
        let a = cgs - params.cgso * w;
        let b = cgd - params.cgdo * w;
        assert!((a - b).abs() < 1e-18);
    }

    #[test]
    fn junction_cap_reverse_bias_decreases() {
        let c_rev = junction_cap(1e-12, -3.0, 0.8, 0.5);
        let c_zero = junction_cap(1e-12, 0.0, 0.8, 0.5);
        assert!(c_rev < c_zero);
        assert_eq!(c_zero, 1e-12);
    }

    #[test]
    fn junction_cap_forward_bias_is_finite_and_continuous() {
        let just_below = junction_cap(1e-12, 0.4 - 1e-9, 0.8, 0.5);
        let just_above = junction_cap(1e-12, 0.4 + 1e-9, 0.8, 0.5);
        assert!((just_below - just_above).abs() < 1e-20);
        let way_forward = junction_cap(1e-12, 5.0, 0.8, 0.5);
        assert!(way_forward.is_finite() && way_forward > just_above);
    }

    #[test]
    fn diffusion_cap_scales_with_width() {
        let params = p();
        let small = diffusion_cap(&params, 5e-6, -2.0);
        let large = diffusion_cap(&params, 50e-6, -2.0);
        assert!(large > 5.0 * small && large < 15.0 * small);
    }
}
