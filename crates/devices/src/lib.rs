//! Encapsulated device evaluators for ASTRX/OBLX.
//!
//! The paper's key modeling idea: **all aspects of a device's
//! representation and performance are hidden behind the evaluator
//! interface** and obtained only through requests. The synthesis
//! formulation never inverts a device equation or assumes a square law —
//! that is what lets the same architecture drive Level 1, Level 3,
//! BSIM-style MOS models and Gummel–Poon bipolars without touching the
//! optimizer.
//!
//! An evaluator answers two kinds of requests, both at a given set of
//! terminal voltages:
//!
//! * **Large-signal** ([`MosModel::op`], [`BjtModel::op`]) — terminal
//!   currents and their derivatives, used for Kirchhoff-law residuals and
//!   Newton–Raphson moves in the relaxed-dc formulation;
//! * **Small-signal** (the capacitance and conductance fields of the same
//!   operating-point structs) — the linearized element values stamped
//!   into the AWE circuit.
//!
//! The [`library::ModelLibrary`] builds evaluators from `.model` cards;
//! [`process`] ships representative 2µ / 1.2µ CMOS and BiCMOS parameter
//! decks standing in for the proprietary foundry decks of the paper.

pub mod batch;
mod bjt;
mod caps;
mod diode;
pub mod library;
mod mos;
mod mos_iv;
pub mod process;

pub use batch::{BjtLanes, DiodeLanes, MosLanes};
pub use bjt::{BjtModel, BjtOp, BjtParams};
pub use diode::{DiodeModel, DiodeOp, DiodeParams};
pub use library::{DeviceModel, ModelError, ModelLibrary};
pub use mos::{MosModel, MosOp, Polarity, Region};
pub use mos_iv::MosParams;
