//! Structure-of-arrays batched device evaluation.
//!
//! The incremental cost evaluator re-evaluates device operating points
//! tens of thousands of times per synthesis. Walking the instance list
//! (an array of structs, each dragging its model parameters, node
//! indices and name along) costs a scattered cache line per device and
//! gives the compiler nothing to vectorize over. A [`MosLanes`] batch
//! instead carries the per-evaluation inputs — geometry and terminal
//! voltages — as parallel contiguous arrays, grouped by model, so the
//! model-parameter block is loaded once per *group* rather than once
//! per device and the inner loop touches only dense `f64` lanes.
//!
//! **Bit-identity contract:** `op_batch` runs the exact scalar
//! evaluator per lane ([`MosModel::op`] and friends). Batch results are
//! bitwise equal to the corresponding scalar calls — the evaluation
//! plan relies on this to keep incremental and cold evaluation paths
//! interchangeable (see `bit_identical_to_scalar_*` tests below).

use crate::bjt::{BjtModel, BjtOp};
use crate::diode::{DiodeModel, DiodeOp};
use crate::mos::{MosModel, MosOp};

/// SoA input lanes for one batch of MOS evaluations sharing a model.
#[derive(Debug, Clone, Default)]
pub struct MosLanes {
    /// Channel widths (m).
    pub w: Vec<f64>,
    /// Channel lengths (m).
    pub l: Vec<f64>,
    /// Absolute terminal voltages (V).
    pub vd: Vec<f64>,
    /// Gate voltages (V).
    pub vg: Vec<f64>,
    /// Source voltages (V).
    pub vs: Vec<f64>,
    /// Bulk voltages (V).
    pub vb: Vec<f64>,
}

impl MosLanes {
    /// Empties every lane, keeping capacity.
    pub fn clear(&mut self) {
        self.w.clear();
        self.l.clear();
        self.vd.clear();
        self.vg.clear();
        self.vs.clear();
        self.vb.clear();
    }

    /// Appends one evaluation's inputs.
    pub fn push(&mut self, w: f64, l: f64, vd: f64, vg: f64, vs: f64, vb: f64) {
        self.w.push(w);
        self.l.push(l);
        self.vd.push(vd);
        self.vg.push(vg);
        self.vs.push(vs);
        self.vb.push(vb);
    }

    /// Lanes filled so far.
    pub fn len(&self) -> usize {
        self.w.len()
    }

    /// `true` when no lane is filled.
    pub fn is_empty(&self) -> bool {
        self.w.is_empty()
    }
}

impl MosModel {
    /// Evaluates every lane of `lanes`, appending one [`MosOp`] per lane
    /// to `out` in lane order. Each result is bit-identical to the
    /// corresponding scalar [`MosModel::op`] call.
    pub fn op_batch(&self, lanes: &MosLanes, out: &mut Vec<MosOp>) {
        out.reserve(lanes.len());
        for i in 0..lanes.len() {
            out.push(self.op(
                lanes.w[i],
                lanes.l[i],
                lanes.vd[i],
                lanes.vg[i],
                lanes.vs[i],
                lanes.vb[i],
            ));
        }
    }
}

/// SoA input lanes for one batch of BJT evaluations sharing a model.
#[derive(Debug, Clone, Default)]
pub struct BjtLanes {
    /// Emitter-area scale factors.
    pub area: Vec<f64>,
    /// Collector voltages (V).
    pub vc: Vec<f64>,
    /// Base voltages (V).
    pub vb: Vec<f64>,
    /// Emitter voltages (V).
    pub ve: Vec<f64>,
}

impl BjtLanes {
    /// Empties every lane, keeping capacity.
    pub fn clear(&mut self) {
        self.area.clear();
        self.vc.clear();
        self.vb.clear();
        self.ve.clear();
    }

    /// Appends one evaluation's inputs.
    pub fn push(&mut self, area: f64, vc: f64, vb: f64, ve: f64) {
        self.area.push(area);
        self.vc.push(vc);
        self.vb.push(vb);
        self.ve.push(ve);
    }

    /// Lanes filled so far.
    pub fn len(&self) -> usize {
        self.area.len()
    }

    /// `true` when no lane is filled.
    pub fn is_empty(&self) -> bool {
        self.area.is_empty()
    }
}

impl BjtModel {
    /// Evaluates every lane of `lanes`, appending one [`BjtOp`] per lane
    /// to `out` in lane order; bit-identical to scalar [`BjtModel::op`].
    pub fn op_batch(&self, lanes: &BjtLanes, out: &mut Vec<BjtOp>) {
        out.reserve(lanes.len());
        for i in 0..lanes.len() {
            out.push(self.op(lanes.area[i], lanes.vc[i], lanes.vb[i], lanes.ve[i]));
        }
    }
}

/// SoA input lanes for one batch of diode evaluations sharing a model.
#[derive(Debug, Clone, Default)]
pub struct DiodeLanes {
    /// Junction-area scale factors.
    pub area: Vec<f64>,
    /// Anode-to-cathode voltages (V).
    pub vd: Vec<f64>,
}

impl DiodeLanes {
    /// Empties every lane, keeping capacity.
    pub fn clear(&mut self) {
        self.area.clear();
        self.vd.clear();
    }

    /// Appends one evaluation's inputs.
    pub fn push(&mut self, area: f64, vd: f64) {
        self.area.push(area);
        self.vd.push(vd);
    }

    /// Lanes filled so far.
    pub fn len(&self) -> usize {
        self.area.len()
    }

    /// `true` when no lane is filled.
    pub fn is_empty(&self) -> bool {
        self.area.is_empty()
    }
}

impl DiodeModel {
    /// Evaluates every lane of `lanes`, appending one [`DiodeOp`] per
    /// lane to `out`; bit-identical to scalar [`DiodeModel::op`].
    pub fn op_batch(&self, lanes: &DiodeLanes, out: &mut Vec<DiodeOp>) {
        out.reserve(lanes.len());
        for i in 0..lanes.len() {
            out.push(self.op(lanes.area[i], lanes.vd[i]));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mos::Polarity;
    use crate::mos_iv::MosParams;
    use crate::{BjtParams, DiodeParams};

    fn nmos() -> MosModel {
        MosModel::new(
            "n",
            Polarity::Nmos,
            MosParams {
                kp: 1.0e-4,
                lambda: 0.02,
                ..MosParams::default()
            },
        )
    }

    #[test]
    fn bit_identical_to_scalar_mos() {
        let m = nmos();
        let cases = [
            (50e-6, 2e-6, 3.0, 2.0, 0.0, 0.0),
            (10e-6, 1e-6, 0.1, 1.5, 0.0, -0.5),
            (20e-6, 5e-6, -1.0, 0.2, 0.0, 0.0), // inverted
            (80e-6, 2e-6, 5.0, 0.3, 0.0, 0.0),  // cutoff
        ];
        let mut lanes = MosLanes::default();
        for &(w, l, vd, vg, vs, vb) in &cases {
            lanes.push(w, l, vd, vg, vs, vb);
        }
        let mut batch = Vec::new();
        m.op_batch(&lanes, &mut batch);
        assert_eq!(batch.len(), cases.len());
        for (op, &(w, l, vd, vg, vs, vb)) in batch.iter().zip(&cases) {
            let solo = m.op(w, l, vd, vg, vs, vb);
            assert_eq!(op.id.to_bits(), solo.id.to_bits());
            assert_eq!(op.gm.to_bits(), solo.gm.to_bits());
            assert_eq!(op.gds.to_bits(), solo.gds.to_bits());
            assert_eq!(op.gmbs.to_bits(), solo.gmbs.to_bits());
            assert_eq!(op.caps.cgs.to_bits(), solo.caps.cgs.to_bits());
            assert_eq!(op.caps.cgd.to_bits(), solo.caps.cgd.to_bits());
            assert_eq!(op.sat_margin.to_bits(), solo.sat_margin.to_bits());
        }
    }

    #[test]
    fn bit_identical_to_scalar_bjt_and_diode() {
        let q = BjtModel::new("q", true, BjtParams::default());
        let mut bl = BjtLanes::default();
        bl.push(1.0, 3.0, 0.7, 0.0);
        bl.push(2.0, 0.3, 0.65, 0.0);
        let mut bops = Vec::new();
        q.op_batch(&bl, &mut bops);
        for (op, (a, vc, vb, ve)) in bops
            .iter()
            .zip([(1.0, 3.0, 0.7, 0.0), (2.0, 0.3, 0.65, 0.0)])
        {
            let solo = q.op(a, vc, vb, ve);
            assert_eq!(op.ic.to_bits(), solo.ic.to_bits());
            assert_eq!(op.gm_be.to_bits(), solo.gm_be.to_bits());
        }

        let d = DiodeModel::new("d", DiodeParams::default());
        let mut dl = DiodeLanes::default();
        dl.push(1.0, 0.6);
        dl.push(3.0, -2.0);
        let mut dops = Vec::new();
        d.op_batch(&dl, &mut dops);
        for (op, (a, vd)) in dops.iter().zip([(1.0, 0.6), (3.0, -2.0)]) {
            let solo = d.op(a, vd);
            assert_eq!(op.id.to_bits(), solo.id.to_bits());
            assert_eq!(op.gd.to_bits(), solo.gd.to_bits());
        }
    }

    #[test]
    fn lanes_clear_keeps_capacity() {
        let mut lanes = MosLanes::default();
        lanes.push(1.0, 1.0, 0.0, 0.0, 0.0, 0.0);
        let cap = lanes.w.capacity();
        lanes.clear();
        assert!(lanes.is_empty());
        assert_eq!(lanes.w.capacity(), cap);
    }
}
