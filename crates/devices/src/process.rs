//! Representative fabrication-process parameter decks.
//!
//! The paper synthesized against proprietary 2µ and 1.2µ CMOS and BiCMOS
//! foundry decks that are not publicly available; these textbook-era
//! parameter sets stand in for them (see DESIGN.md §1). Every deck ships
//! `.model` cards named `nmos` / `pmos` (plus `npn` for BiCMOS) so the
//! same benchmark netlists run against any deck.

use oblx_netlist::ModelCard;
use std::collections::HashMap;

/// Which process/model combination to synthesize against — the §VI model
/// experiment of the paper varies exactly this.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProcessDeck {
    /// 2µ CMOS, SPICE level-1 models.
    C2Level1,
    /// 2µ CMOS, BSIM-style models.
    C2Bsim,
    /// 1.2µ CMOS, BSIM-style models.
    C12Bsim,
    /// 1.2µ CMOS, level-3 models.
    C12Level3,
    /// 2µ BiCMOS: level-1 MOS plus a Gummel–Poon NPN.
    BicmosC2,
}

impl ProcessDeck {
    /// Human-readable label used in experiment reports.
    pub fn label(self) -> &'static str {
        match self {
            ProcessDeck::C2Level1 => "MOS1/2u",
            ProcessDeck::C2Bsim => "BSIM/2u",
            ProcessDeck::C12Bsim => "BSIM/1.2u",
            ProcessDeck::C12Level3 => "MOS3/1.2u",
            ProcessDeck::BicmosC2 => "BiCMOS/2u",
        }
    }

    /// Minimum drawn channel length for the deck (m).
    pub fn lmin(self) -> f64 {
        match self {
            ProcessDeck::C2Level1 | ProcessDeck::C2Bsim | ProcessDeck::BicmosC2 => 2.0e-6,
            ProcessDeck::C12Bsim | ProcessDeck::C12Level3 => 1.2e-6,
        }
    }

    /// The `.model` cards of the deck.
    pub fn cards(self) -> Vec<ModelCard> {
        match self {
            ProcessDeck::C2Level1 => vec![
                mos_card("nmos", "nmos", &C2_NMOS_L1),
                mos_card("pmos", "pmos", &C2_PMOS_L1),
            ],
            ProcessDeck::C2Bsim => vec![
                mos_card("nmos", "nmos", &C2_NMOS_BSIM),
                mos_card("pmos", "pmos", &C2_PMOS_BSIM),
            ],
            ProcessDeck::C12Bsim => vec![
                mos_card("nmos", "nmos", &C12_NMOS_BSIM),
                mos_card("pmos", "pmos", &C12_PMOS_BSIM),
            ],
            ProcessDeck::C12Level3 => vec![
                mos_card("nmos", "nmos", &C12_NMOS_L3),
                mos_card("pmos", "pmos", &C12_PMOS_L3),
            ],
            ProcessDeck::BicmosC2 => vec![
                mos_card("nmos", "nmos", &BIC_NMOS_L1),
                mos_card("pmos", "pmos", &BIC_PMOS_L1),
                mos_card("npn", "npn", &BICMOS_NPN),
            ],
        }
    }
}

/// All decks, for sweeping experiments.
pub const ALL_DECKS: [ProcessDeck; 5] = [
    ProcessDeck::C2Level1,
    ProcessDeck::C2Bsim,
    ProcessDeck::C12Bsim,
    ProcessDeck::C12Level3,
    ProcessDeck::BicmosC2,
];

fn mos_card(name: &str, kind: &str, params: &[(&str, f64)]) -> ModelCard {
    ModelCard {
        name: name.to_string(),
        kind: kind.to_string(),
        params: params
            .iter()
            .map(|(k, v)| (k.to_string(), *v))
            .collect::<HashMap<_, _>>(),
    }
}

// 2µ CMOS, level 1. tox = 40 nm (cox ≈ 0.86 mF/m²).
const C2_NMOS_L1: [(&str, f64); 12] = [
    ("level", 1.0),
    ("vto", 0.75),
    ("kp", 5.2e-5),
    ("gamma", 0.55),
    ("phi", 0.65),
    ("lambda", 0.03),
    ("tox", 40e-9),
    ("ld", 0.25e-6),
    ("cgso", 2.2e-10),
    ("cgdo", 2.2e-10),
    ("cj", 3.1e-4),
    ("ldif", 3.0e-6),
];
const C2_PMOS_L1: [(&str, f64); 12] = [
    ("level", 1.0),
    ("vto", -0.85),
    ("kp", 1.8e-5),
    ("gamma", 0.5),
    ("phi", 0.62),
    ("lambda", 0.045),
    ("tox", 40e-9),
    ("ld", 0.3e-6),
    ("cgso", 2.4e-10),
    ("cgdo", 2.4e-10),
    ("cj", 4.5e-4),
    ("ldif", 3.0e-6),
];

// 2µ CMOS, BSIM-style. Internal drain/source resistances add internal
// nodes to the large-signal template (paper §VI: added node-voltage
// variables typically outnumber the user's).
const C2_NMOS_BSIM: [(&str, f64); 15] = [
    ("level", 4.0),
    ("vfb", -0.95),
    ("phi", 0.65),
    ("k1", 0.62),
    ("k2", 0.05),
    ("eta", 0.015),
    ("theta", 0.07),
    ("u0", 0.058),
    ("u1", 3.0e-8),
    ("tox", 40e-9),
    ("ld", 0.25e-6),
    ("cj", 3.1e-4),
    ("ldif", 3.0e-6),
    ("rd", 150.0),
    ("rs", 150.0),
];
const C2_PMOS_BSIM: [(&str, f64); 15] = [
    ("level", 4.0),
    // PMOS BSIM parameters are given in the normalized frame except the
    // card-level vto, which BSIM-style decks leave unset (vfb governs).
    ("vfb", -0.85),
    ("phi", 0.6),
    ("k1", 0.5),
    ("k2", 0.04),
    ("eta", 0.02),
    ("theta", 0.1),
    ("u0", 0.021),
    ("u1", 2.0e-8),
    ("tox", 40e-9),
    ("ld", 0.3e-6),
    ("cj", 4.5e-4),
    ("ldif", 3.0e-6),
    ("rd", 220.0),
    ("rs", 220.0),
];

// 1.2µ CMOS, BSIM-style. tox = 25 nm.
const C12_NMOS_BSIM: [(&str, f64); 15] = [
    ("level", 4.0),
    ("vfb", -0.85),
    ("phi", 0.68),
    ("k1", 0.55),
    ("k2", 0.05),
    ("eta", 0.03),
    ("theta", 0.12),
    ("u0", 0.052),
    ("u1", 6.0e-8),
    ("tox", 25e-9),
    ("ld", 0.18e-6),
    ("cj", 3.6e-4),
    ("ldif", 1.8e-6),
    ("rd", 180.0),
    ("rs", 180.0),
];
const C12_PMOS_BSIM: [(&str, f64); 15] = [
    ("level", 4.0),
    ("vfb", -0.75),
    ("phi", 0.64),
    ("k1", 0.45),
    ("k2", 0.04),
    ("eta", 0.035),
    ("theta", 0.14),
    ("u0", 0.019),
    ("u1", 4.0e-8),
    ("tox", 25e-9),
    ("ld", 0.2e-6),
    ("cj", 5.0e-4),
    ("ldif", 1.8e-6),
    ("rd", 260.0),
    ("rs", 260.0),
];

// 1.2µ CMOS, level 3.
const C12_NMOS_L3: [(&str, f64); 15] = [
    ("level", 3.0),
    ("vto", 0.68),
    ("u0", 0.055),
    ("gamma", 0.45),
    ("phi", 0.68),
    ("theta", 0.1),
    ("vmax", 1.6e5),
    ("eta", 0.02),
    ("kappa", 0.5),
    ("tox", 25e-9),
    ("ld", 0.18e-6),
    ("cj", 3.6e-4),
    ("ldif", 1.8e-6),
    ("rd", 180.0),
    ("rs", 180.0),
];
const C12_PMOS_L3: [(&str, f64); 15] = [
    ("level", 3.0),
    ("vto", -0.75),
    ("u0", 0.02),
    ("gamma", 0.42),
    ("phi", 0.64),
    ("theta", 0.12),
    ("vmax", 1.0e5),
    ("eta", 0.025),
    ("kappa", 0.4),
    ("tox", 25e-9),
    ("ld", 0.2e-6),
    ("cj", 5.0e-4),
    ("ldif", 1.8e-6),
    ("rd", 260.0),
    ("rs", 260.0),
];

// BiCMOS MOS devices: the level-1 deck plus extrinsic drain/source
// resistance, so the BiCMOS templates also carry internal nodes.
const BIC_NMOS_L1: [(&str, f64); 14] = [
    ("level", 1.0),
    ("vto", 0.75),
    ("kp", 5.2e-5),
    ("gamma", 0.55),
    ("phi", 0.65),
    ("lambda", 0.03),
    ("tox", 40e-9),
    ("ld", 0.25e-6),
    ("cgso", 2.2e-10),
    ("cgdo", 2.2e-10),
    ("cj", 3.1e-4),
    ("ldif", 3.0e-6),
    ("rd", 150.0),
    ("rs", 150.0),
];
const BIC_PMOS_L1: [(&str, f64); 14] = [
    ("level", 1.0),
    ("vto", -0.85),
    ("kp", 1.8e-5),
    ("gamma", 0.5),
    ("phi", 0.62),
    ("lambda", 0.045),
    ("tox", 40e-9),
    ("ld", 0.3e-6),
    ("cgso", 2.4e-10),
    ("cgdo", 2.4e-10),
    ("cj", 4.5e-4),
    ("ldif", 3.0e-6),
    ("rd", 220.0),
    ("rs", 220.0),
];

// BiCMOS NPN (vertical, 2µ-era) with base resistance (internal node).
const BICMOS_NPN: [(&str, f64); 8] = [
    ("is", 2.0e-16),
    ("bf", 110.0),
    ("br", 2.0),
    ("vaf", 60.0),
    ("tf", 0.25e-9),
    ("cje", 0.8e-12),
    ("cjc", 0.4e-12),
    ("rb", 250.0),
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ModelLibrary, Region};

    #[test]
    fn every_deck_builds_a_library() {
        for deck in ALL_DECKS {
            let lib = ModelLibrary::from_cards(&deck.cards())
                .unwrap_or_else(|e| panic!("{}: {e}", deck.label()));
            assert!(lib.mos("nmos").is_ok(), "{}", deck.label());
            assert!(lib.mos("pmos").is_ok(), "{}", deck.label());
        }
        let bic = ModelLibrary::from_cards(&ProcessDeck::BicmosC2.cards()).unwrap();
        assert!(bic.bjt("npn").is_ok());
    }

    #[test]
    fn decks_conduct_sensibly() {
        // A 20/2 NMOS at vgs=2.5, vds=2.5 should carry 10µA–10mA in any
        // deck, and the PMOS mirror likewise.
        for deck in ALL_DECKS {
            let lib = ModelLibrary::from_cards(&deck.cards()).unwrap();
            let n = lib.mos("nmos").unwrap();
            let opn = n.op(20e-6, 2e-6, 2.5, 2.5, 0.0, 0.0);
            assert!(
                opn.id > 1e-5 && opn.id < 1e-2,
                "{} nmos id = {}",
                deck.label(),
                opn.id
            );
            assert_eq!(opn.region, Region::Saturation, "{}", deck.label());
            let p = lib.mos("pmos").unwrap();
            let opp = p.op(20e-6, 2e-6, 2.5, 2.5, 5.0, 5.0);
            assert!(
                opp.id < -1e-6 && opp.id > -1e-2,
                "{} pmos id = {}",
                deck.label(),
                opp.id
            );
        }
    }

    #[test]
    fn model_choice_changes_predicted_current() {
        // The §VI experiment hinges on different models disagreeing for
        // the same geometry and bias.
        let l1 = ModelLibrary::from_cards(&ProcessDeck::C12Level3.cards()).unwrap();
        let bs = ModelLibrary::from_cards(&ProcessDeck::C12Bsim.cards()).unwrap();
        let id_l3 = l1
            .mos("nmos")
            .unwrap()
            .op(20e-6, 2e-6, 2.0, 2.0, 0.0, 0.0)
            .id;
        let id_bs = bs
            .mos("nmos")
            .unwrap()
            .op(20e-6, 2e-6, 2.0, 2.0, 0.0, 0.0)
            .id;
        let ratio = id_l3 / id_bs;
        assert!(
            (ratio - 1.0).abs() > 0.05,
            "models should disagree, ratio = {ratio}"
        );
    }

    #[test]
    fn bsim_decks_have_internal_nodes() {
        let lib = ModelLibrary::from_cards(&ProcessDeck::C2Bsim.cards()).unwrap();
        let (rd, rs) = lib.mos("nmos").unwrap().series_resistance();
        assert!(rd > 0.0 && rs > 0.0);
    }
}
