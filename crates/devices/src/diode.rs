//! Junction-diode evaluator (SPICE `D` model subset): exponential I–V
//! with series-limited exponent, plus depletion/diffusion capacitance.

use crate::caps::junction_cap;
use crate::mos_iv::VT;
use oblx_netlist::ModelCard;

/// Diode model parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct DiodeParams {
    /// Saturation current (A).
    pub is: f64,
    /// Emission coefficient.
    pub n: f64,
    /// Zero-bias junction capacitance (F).
    pub cj0: f64,
    /// Built-in potential (V).
    pub vj: f64,
    /// Grading coefficient.
    pub m: f64,
    /// Transit time (s) for diffusion capacitance.
    pub tt: f64,
}

impl Default for DiodeParams {
    fn default() -> Self {
        DiodeParams {
            is: 1e-14,
            n: 1.0,
            cj0: 1e-12,
            vj: 0.75,
            m: 0.5,
            tt: 0.0,
        }
    }
}

impl DiodeParams {
    /// Builds parameters from a `.model` card (kind `d`).
    pub fn from_card(card: &ModelCard) -> DiodeParams {
        let mut p = DiodeParams::default();
        let g = |k: &str, d: f64| card.params.get(k).copied().unwrap_or(d);
        p.is = g("is", p.is);
        p.n = g("n", p.n);
        p.cj0 = g("cj0", p.cj0);
        p.vj = g("vj", p.vj);
        p.m = g("m", p.m);
        p.tt = g("tt", p.tt);
        p
    }
}

/// A diode operating point: current anode→cathode, incremental
/// conductance, and small-signal capacitance.
#[derive(Debug, Clone, Copy, Default)]
pub struct DiodeOp {
    /// Junction current (A), anode → cathode.
    pub id: f64,
    /// Incremental conductance ∂id/∂vd (S).
    pub gd: f64,
    /// Small-signal capacitance (F): depletion + diffusion.
    pub cd: f64,
    /// `true` when forward-biased past ~0.4 V.
    pub forward: bool,
}

impl DiodeOp {
    /// Looks up a named quantity (`id`, `gd`, `cd`).
    pub fn quantity(&self, name: &str) -> Option<f64> {
        Some(match name {
            "id" => self.id,
            "gd" => self.gd,
            "cd" => self.cd,
            _ => return None,
        })
    }
}

/// An encapsulated diode evaluator.
///
/// # Examples
///
/// ```
/// use oblx_devices::{DiodeModel, DiodeParams};
///
/// let d = DiodeModel::new("d1", DiodeParams::default());
/// let fwd = d.op(1.0, 0.65);
/// let rev = d.op(1.0, -5.0);
/// assert!(fwd.id > 1e-6 && fwd.forward);
/// assert!(rev.id < 0.0 && !rev.forward);
/// ```
#[derive(Debug, Clone)]
pub struct DiodeModel {
    name: String,
    params: DiodeParams,
}

impl DiodeModel {
    /// Creates an evaluator.
    pub fn new(name: impl Into<String>, params: DiodeParams) -> Self {
        DiodeModel {
            name: name.into(),
            params,
        }
    }

    /// Creates an evaluator from a `.model` card (kind `d`).
    pub fn from_card(card: &ModelCard) -> Option<DiodeModel> {
        if card.kind != "d" && card.kind != "diode" {
            return None;
        }
        Some(DiodeModel::new(
            card.name.clone(),
            DiodeParams::from_card(card),
        ))
    }

    /// Model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The underlying parameters.
    pub fn params(&self) -> &DiodeParams {
        &self.params
    }

    /// Evaluates the operating point at junction voltage `vd`
    /// (anode − cathode), scaled by `area`.
    ///
    /// The exponential is linearized beyond 40·n·VT so the evaluator is
    /// total over any annealing-proposed voltage.
    pub fn op(&self, area: f64, vd: f64) -> DiodeOp {
        let p = &self.params;
        let a = area.max(1e-3);
        let nvt = p.n * VT;
        let x = vd / nvt;
        const LIM: f64 = 40.0;
        let (e, de) = if x < LIM {
            let e = x.exp();
            (e, e)
        } else {
            let e = LIM.exp();
            (e * (1.0 + (x - LIM)), e)
        };
        let id = a * p.is * (e - 1.0);
        let gd = a * p.is * de / nvt;
        let c_dep = junction_cap(a * p.cj0, vd, p.vj, p.m);
        let c_diff = p.tt * gd;
        DiodeOp {
            id,
            gd,
            cd: c_dep + c_diff,
            forward: vd > 0.4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponential_law() {
        let d = DiodeModel::new("d", DiodeParams::default());
        let a = d.op(1.0, 0.60);
        let b = d.op(1.0, 0.60 + VT * (10.0f64).ln());
        // One decade of voltage in n·VT·ln(10) multiplies current by 10.
        assert!((b.id / a.id - 10.0).abs() < 0.01, "{}", b.id / a.id);
    }

    #[test]
    fn conductance_matches_finite_difference() {
        let d = DiodeModel::new("d", DiodeParams::default());
        let h = 1e-7;
        for vd in [-2.0, 0.3, 0.65, 0.8] {
            let op = d.op(1.0, vd);
            let fd = (d.op(1.0, vd + h).id - d.op(1.0, vd - h).id) / (2.0 * h);
            assert!(
                (op.gd - fd).abs() <= 1e-3 * fd.abs().max(1e-15),
                "vd={vd}: {} vs {}",
                op.gd,
                fd
            );
        }
    }

    #[test]
    fn overflow_protected() {
        let d = DiodeModel::new("d", DiodeParams::default());
        let op = d.op(1.0, 50.0);
        assert!(op.id.is_finite() && op.gd.is_finite());
    }

    #[test]
    fn capacitance_grows_forward() {
        let d = DiodeModel::new(
            "d",
            DiodeParams {
                tt: 1e-9,
                ..DiodeParams::default()
            },
        );
        let rev = d.op(1.0, -3.0);
        let fwd = d.op(1.0, 0.7);
        assert!(fwd.cd > rev.cd);
    }

    #[test]
    fn area_scaling() {
        let d = DiodeModel::new("d", DiodeParams::default());
        let one = d.op(1.0, 0.65);
        let four = d.op(4.0, 0.65);
        assert!((four.id / one.id - 4.0).abs() < 1e-9);
    }

    #[test]
    fn from_card_kinds() {
        use std::collections::HashMap;
        let card = ModelCard {
            name: "dx".into(),
            kind: "d".into(),
            params: HashMap::from([("is".to_string(), 2e-15)]),
        };
        assert_eq!(DiodeModel::from_card(&card).unwrap().params().is, 2e-15);
        let wrong = ModelCard {
            name: "n".into(),
            kind: "nmos".into(),
            params: HashMap::new(),
        };
        assert!(DiodeModel::from_card(&wrong).is_none());
    }
}
