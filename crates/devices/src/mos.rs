//! Terminal-frame MOS evaluator: polarity normalization, source/drain
//! inversion handling, and the public operating-point struct.

use crate::caps::{mos_caps, MosCaps};
use crate::mos_iv::{bsim1, level1, level3, MosParams, RawIv, RawRegion};
use oblx_netlist::ModelCard;

/// Device polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Polarity {
    /// n-channel.
    Nmos,
    /// p-channel.
    Pmos,
}

impl Polarity {
    fn sign(self) -> f64 {
        match self {
            Polarity::Nmos => 1.0,
            Polarity::Pmos => -1.0,
        }
    }
}

/// Operating region reported in the terminal frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Region {
    /// Below threshold (possibly with a weak-inversion tail).
    #[default]
    Cutoff,
    /// Linear / ohmic operation.
    Triode,
    /// Saturation — the analog designer's home region.
    Saturation,
}

impl From<RawRegion> for Region {
    fn from(r: RawRegion) -> Region {
        match r {
            RawRegion::Cutoff => Region::Cutoff,
            RawRegion::Triode => Region::Triode,
            RawRegion::Saturation => Region::Saturation,
        }
    }
}

/// A complete MOS operating point in the **terminal frame**.
///
/// `id` is the current flowing from the drain terminal through the
/// channel to the source terminal (negative for PMOS in normal
/// operation). The conductance triple are the derivatives of that same
/// current with respect to the *terminal* `v(g,s)`, `v(d,s)`, `v(b,s)`;
/// together they give the full Jacobian of the terminal currents:
///
/// ```text
/// ∂I_d/∂v_g = gm      ∂I_d/∂v_d = gds      ∂I_d/∂v_b = gmbs
/// ∂I_d/∂v_s = −(gm + gds + gmbs)
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct MosOp {
    /// Channel current drain→source (A), terminal frame.
    pub id: f64,
    /// ∂id/∂v(g,s) (S).
    pub gm: f64,
    /// ∂id/∂v(d,s) (S).
    pub gds: f64,
    /// ∂id/∂v(b,s) (S).
    pub gmbs: f64,
    /// Small-signal capacitances, terminal frame.
    pub caps: MosCaps,
    /// Threshold voltage (normalized frame, positive convention).
    pub vth: f64,
    /// Saturation voltage (normalized frame).
    pub vdsat: f64,
    /// |vds| − vdsat: positive when safely saturated.
    pub sat_margin: f64,
    /// Operating region.
    pub region: Region,
    /// `true` when source/drain roles were swapped (vds reversed).
    pub inverted: bool,
    /// Normalized-frame gate–source voltage (positive convention).
    pub vgs_n: f64,
    /// Normalized-frame drain–source voltage.
    pub vds_n: f64,
    /// Gate width used (m).
    pub w: f64,
    /// Gate length used (m).
    pub l: f64,
}

impl MosOp {
    /// Looks up a named operating-point quantity, as referenced from
    /// specification expressions (e.g. `xamp.m1.cd`).
    ///
    /// Known names: `id`, `gm`, `gds`, `gmbs`, `vth`, `vdsat`, `vov`,
    /// `cgs`, `cgd`, `cgb`, `cbd`, `cbs`, `cd` (total drain load
    /// `cbd + cgd`), `cs` (total source load `cbs + cgs`), `satmargin`,
    /// `area` (`w·l`), `w`, `l`.
    pub fn quantity(&self, name: &str) -> Option<f64> {
        Some(match name {
            "id" => self.id,
            "gm" => self.gm,
            "gds" => self.gds,
            "gmbs" => self.gmbs,
            "vth" => self.vth,
            "vdsat" => self.vdsat,
            "vov" => self.vdsat, // level-1 vdsat == overdrive
            "cgs" => self.caps.cgs,
            "cgd" => self.caps.cgd,
            "cgb" => self.caps.cgb,
            "cbd" => self.caps.cbd,
            "cbs" => self.caps.cbs,
            "cd" => self.caps.cbd + self.caps.cgd,
            "cs" => self.caps.cbs + self.caps.cgs,
            "satmargin" => self.sat_margin,
            "area" => self.w * self.l,
            "w" => self.w,
            "l" => self.l,
            _ => return None,
        })
    }
}

/// An encapsulated MOS device evaluator: a parameter set, a polarity, and
/// a model level.
///
/// # Examples
///
/// ```
/// use oblx_devices::{MosModel, Polarity, Region, MosParams};
///
/// let m = MosModel::new("n1", Polarity::Nmos, MosParams::default());
/// // 10/1 device, vd=3, vg=2, vs=0, vb=0 → saturation.
/// let op = m.op(10e-6, 1e-6, 3.0, 2.0, 0.0, 0.0);
/// assert_eq!(op.region, Region::Saturation);
/// assert!(op.id > 0.0 && op.gm > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct MosModel {
    name: String,
    polarity: Polarity,
    params: MosParams,
}

impl MosModel {
    /// Creates an evaluator from explicit parameters.
    pub fn new(name: impl Into<String>, polarity: Polarity, params: MosParams) -> Self {
        MosModel {
            name: name.into(),
            polarity,
            params,
        }
    }

    /// Creates an evaluator from a `.model` card (kind `nmos`/`pmos`).
    ///
    /// Following SPICE convention, a PMOS card carries a negative `vto`;
    /// it is flipped into the internal normalized (NMOS-like) frame here.
    /// All other parameters are interpreted directly in the normalized
    /// frame.
    pub fn from_card(card: &ModelCard) -> Option<MosModel> {
        let polarity = match card.kind.as_str() {
            "nmos" => Polarity::Nmos,
            "pmos" => Polarity::Pmos,
            _ => return None,
        };
        let mut params = MosParams::from_card(card);
        if polarity == Polarity::Pmos {
            params.vto = -params.vto;
        }
        Some(MosModel::new(card.name.clone(), polarity, params))
    }

    /// Model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Device polarity.
    pub fn polarity(&self) -> Polarity {
        self.polarity
    }

    /// The underlying parameter set.
    pub fn params(&self) -> &MosParams {
        &self.params
    }

    /// Extrinsic drain/source resistances; nonzero values imply internal
    /// nodes in the device template.
    pub fn series_resistance(&self) -> (f64, f64) {
        (self.params.rd, self.params.rs)
    }

    /// Shifts the threshold voltage in the normalized frame by `dv`
    /// volts — per-instance mismatch injection for Monte-Carlo yield
    /// analysis. BSIM-style cards carry the threshold through `vfb`
    /// (`vth = vfb + φ + …`), which therefore shifts by the same `dv`.
    pub fn shift_vto(&mut self, dv: f64) {
        self.params.vto += dv;
        if self.params.level == 4 {
            self.params.vfb += dv;
        }
    }

    fn core(&self, w: f64, l: f64, vgs: f64, vds: f64, vbs: f64) -> RawIv {
        match self.params.level {
            3 => level3(&self.params, w, l, vgs, vds, vbs),
            4 => bsim1(&self.params, w, l, vgs, vds, vbs),
            _ => level1(&self.params, w, l, vgs, vds, vbs),
        }
    }

    /// Evaluates the full operating point at absolute terminal voltages
    /// `(vd, vg, vs, vb)` for a `w × l` device.
    ///
    /// The evaluator is total: any finite voltages yield a finite
    /// operating point (clamps and linearized extensions are applied
    /// internally), which the annealer relies on when exploring wild
    /// configurations.
    pub fn op(&self, w: f64, l: f64, vd: f64, vg: f64, vs: f64, vb: f64) -> MosOp {
        let s = self.polarity.sign();
        // Normalized (NMOS-convention) voltages.
        let vgs_n = s * (vg - vs);
        let vds_n = s * (vd - vs);
        let vbs_n = s * (vb - vs);

        let inverted = vds_n < 0.0;
        let (iv, caps_n) = if !inverted {
            let iv = self.core(w, l, vgs_n, vds_n, vbs_n);
            let caps = mos_caps(&self.params, w, l, iv.region, vds_n, iv.vdsat, vbs_n);
            (iv, caps)
        } else {
            // Swap source/drain roles: evaluate at the swapped frame and
            // map current and derivatives back.
            let vgs_i = vgs_n - vds_n;
            let vds_i = -vds_n;
            let vbs_i = vbs_n - vds_n;
            let raw = self.core(w, l, vgs_i, vds_i, vbs_i);
            let mapped = RawIv {
                id: -raw.id,
                gm: -raw.gm,
                gds: raw.gm + raw.gds + raw.gmbs,
                gmbs: -raw.gmbs,
                vth: raw.vth,
                vdsat: raw.vdsat,
                region: raw.region,
            };
            let c = mos_caps(&self.params, w, l, raw.region, vds_i, raw.vdsat, vbs_i);
            // Swap source/drain-referred capacitances back to terminals.
            let caps = MosCaps {
                cgs: c.cgd,
                cgd: c.cgs,
                cgb: c.cgb,
                cbd: c.cbs,
                cbs: c.cbd,
            };
            (mapped, caps)
        };

        MosOp {
            // Terminal current flips sign for PMOS; derivatives do not
            // (two sign flips cancel).
            id: s * iv.id,
            gm: iv.gm,
            gds: iv.gds,
            gmbs: iv.gmbs,
            caps: caps_n,
            vth: iv.vth,
            vdsat: iv.vdsat,
            sat_margin: vds_n.abs() - iv.vdsat,
            region: iv.region.into(),
            inverted,
            vgs_n,
            vds_n,
            w,
            l,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nmos() -> MosModel {
        MosModel::new(
            "n",
            Polarity::Nmos,
            MosParams {
                kp: 1.0e-4,
                ..MosParams::default()
            },
        )
    }

    fn pmos() -> MosModel {
        MosModel::new(
            "p",
            Polarity::Pmos,
            MosParams {
                kp: 4.0e-5,
                vto: 0.8, // normalized-frame convention: positive
                ..MosParams::default()
            },
        )
    }

    #[test]
    fn nmos_normal_operation() {
        let op = nmos().op(10e-6, 1e-6, 3.0, 2.0, 0.0, 0.0);
        assert_eq!(op.region, Region::Saturation);
        assert!(!op.inverted);
        assert!(op.id > 0.0);
        assert!(op.sat_margin > 0.0);
    }

    #[test]
    fn pmos_normal_operation_current_is_negative() {
        // Source at 5 V, gate at 3 V, drain at 2 V: |vgs|=2 > |vto|.
        let op = pmos().op(10e-6, 1e-6, 2.0, 3.0, 5.0, 5.0);
        assert_eq!(op.region, Region::Saturation);
        assert!(op.id < 0.0, "PMOS drain current flows source→drain");
        assert!(op.gm > 0.0 && op.gds > 0.0);
    }

    #[test]
    fn pmos_mirrors_nmos_magnitudes() {
        // A PMOS biased as the mirror image of an NMOS must carry the
        // mirrored current (same kp for this check).
        let n = nmos();
        let p = MosModel::new("p", Polarity::Pmos, n.params().clone());
        let opn = n.op(10e-6, 1e-6, 2.5, 1.8, 0.0, 0.0);
        let opp = p.op(10e-6, 1e-6, 5.0 - 2.5, 5.0 - 1.8, 5.0, 5.0);
        assert!((opn.id + opp.id).abs() < 1e-15);
        assert!((opn.gm - opp.gm).abs() < 1e-12);
        assert!((opn.gds - opp.gds).abs() < 1e-12);
    }

    #[test]
    fn inverted_mode_is_odd_symmetric() {
        // Swapping drain and source must negate the channel current.
        let m = nmos();
        let fwd = m.op(10e-6, 1e-6, 0.2, 2.0, 0.0, 0.0);
        let rev = m.op(10e-6, 1e-6, 0.0, 2.0, 0.2, 0.0);
        assert!(!fwd.inverted && rev.inverted);
        assert!((fwd.id + rev.id).abs() < 1e-12 * fwd.id.abs().max(1e-12));
    }

    #[test]
    fn inverted_derivatives_match_finite_difference() {
        let m = nmos();
        let (w, l) = (10e-6, 1e-6);
        let (vd, vg, vs, vb) = (0.0, 2.0, 0.8, -0.3);
        let op = m.op(w, l, vd, vg, vs, vb);
        assert!(op.inverted);
        let h = 1e-6;
        let fd_gm =
            (m.op(w, l, vd, vg + h, vs, vb).id - m.op(w, l, vd, vg - h, vs, vb).id) / (2.0 * h);
        let fd_gds =
            (m.op(w, l, vd + h, vg, vs, vb).id - m.op(w, l, vd - h, vg, vs, vb).id) / (2.0 * h);
        let fd_gmbs =
            (m.op(w, l, vd, vg, vs, vb + h).id - m.op(w, l, vd, vg, vs, vb - h).id) / (2.0 * h);
        assert!(
            (op.gm - fd_gm).abs() < 1e-3 * fd_gm.abs().max(1e-9),
            "{} {}",
            op.gm,
            fd_gm
        );
        assert!(
            (op.gds - fd_gds).abs() < 1e-3 * fd_gds.abs().max(1e-9),
            "{} {}",
            op.gds,
            fd_gds
        );
        assert!(
            (op.gmbs - fd_gmbs).abs() < 2e-3 * fd_gmbs.abs().max(1e-9),
            "{} {}",
            op.gmbs,
            fd_gmbs
        );
    }

    #[test]
    fn source_jacobian_row_sums() {
        // ∂I_d/∂v_s must equal −(gm + gds + gmbs).
        let m = nmos();
        let (w, l) = (10e-6, 1e-6);
        let (vd, vg, vs, vb) = (3.0, 2.0, 0.5, 0.0);
        let op = m.op(w, l, vd, vg, vs, vb);
        let h = 1e-6;
        let fd =
            (m.op(w, l, vd, vg, vs + h, vb).id - m.op(w, l, vd, vg, vs - h, vb).id) / (2.0 * h);
        let expect = -(op.gm + op.gds + op.gmbs);
        assert!((fd - expect).abs() < 1e-3 * expect.abs().max(1e-9));
    }

    #[test]
    fn quantities_accessible() {
        let op = nmos().op(10e-6, 1e-6, 3.0, 2.0, 0.0, 0.0);
        assert_eq!(op.quantity("id"), Some(op.id));
        assert_eq!(op.quantity("cd"), Some(op.caps.cbd + op.caps.cgd));
        assert!((op.quantity("area").unwrap() - 1e-11).abs() < 1e-24);
        assert_eq!(op.quantity("bogus"), None);
    }

    #[test]
    fn evaluator_is_total_for_wild_voltages() {
        let m = nmos();
        for vd in [-10.0, 0.0, 10.0] {
            for vg in [-10.0, 0.0, 10.0] {
                for vs in [-10.0, 0.0, 10.0] {
                    for vb in [-10.0, 10.0] {
                        let op = m.op(1e-6, 1e-6, vd, vg, vs, vb);
                        assert!(op.id.is_finite());
                        assert!(op.gm.is_finite() && op.gds.is_finite() && op.gmbs.is_finite());
                        assert!(op.caps.cgs.is_finite() && op.caps.cbd.is_finite());
                    }
                }
            }
        }
    }

    #[test]
    fn continuity_across_vds_sweep() {
        // The cost surface the annealer walks must not have current
        // jumps: sweep vds finely through the triode/saturation
        // boundary for every model level and bound the step-to-step
        // change.
        use crate::MosParams;
        for level in [1u32, 3, 4] {
            let m = MosModel::new(
                "n",
                Polarity::Nmos,
                MosParams {
                    level,
                    kp: 1.0e-4,
                    u0: 0.06,
                    theta: 0.08,
                    vmax: 1.5e5,
                    eta: 0.01,
                    u1: 2e-8,
                    ..MosParams::default()
                },
            );
            let mut last: Option<f64> = None;
            let steps = 400;
            for i in 0..=steps {
                let vds = 3.0 * i as f64 / steps as f64;
                let op = m.op(20e-6, 2e-6, vds, 1.8, 0.0, 0.0);
                if let Some(prev) = last {
                    let jump = (op.id - prev).abs();
                    assert!(
                        jump < 2e-5,
                        "level {level}: id jump {jump:.3e} at vds = {vds:.4}"
                    );
                }
                last = Some(op.id);
            }
        }
    }

    #[test]
    fn continuity_across_vgs_sweep() {
        // Same through the cutoff/strong-inversion boundary.
        use crate::MosParams;
        for level in [1u32, 3, 4] {
            let m = MosModel::new(
                "n",
                Polarity::Nmos,
                MosParams {
                    level,
                    kp: 1.0e-4,
                    u0: 0.06,
                    ..MosParams::default()
                },
            );
            let mut last: Option<f64> = None;
            let steps = 400;
            for i in 0..=steps {
                let vgs = 2.0 * i as f64 / steps as f64;
                let op = m.op(20e-6, 2e-6, 2.5, vgs, 0.0, 0.0);
                if let Some(prev) = last {
                    assert!(
                        (op.id - prev).abs() < 2e-5,
                        "level {level}: id jump at vgs = {vgs:.4}"
                    );
                }
                last = Some(op.id);
            }
        }
    }

    #[test]
    fn vto_shift_changes_current_both_families() {
        use crate::MosParams;
        for level in [1u32, 4] {
            let mut m = MosModel::new(
                "n",
                Polarity::Nmos,
                MosParams {
                    level,
                    kp: 1e-4,
                    u0: 0.05,
                    ..MosParams::default()
                },
            );
            let before = m.op(20e-6, 2e-6, 2.5, 1.5, 0.0, 0.0).id;
            m.shift_vto(0.05); // slower device
            let after = m.op(20e-6, 2e-6, 2.5, 1.5, 0.0, 0.0).id;
            assert!(
                after < before,
                "level {level}: +50 mV vto must cut current ({before} → {after})"
            );
        }
    }

    #[test]
    fn from_card_reads_polarity() {
        use std::collections::HashMap;
        let card = ModelCard {
            name: "pfet".into(),
            kind: "pmos".into(),
            params: HashMap::from([("vto".to_string(), 0.8)]),
        };
        let m = MosModel::from_card(&card).unwrap();
        assert_eq!(m.polarity(), Polarity::Pmos);
        // SPICE-convention negative vto would normalize to +0.8; a
        // positive card value normalizes to −0.8 (depletion).
        assert_eq!(m.params().vto, -0.8);
        let bad = ModelCard {
            name: "x".into(),
            kind: "npn".into(),
            params: HashMap::new(),
        };
        assert!(MosModel::from_card(&bad).is_none());
    }
}
