//! MOS I–V cores in the *normalized frame*: NMOS-convention voltages with
//! `vds ≥ 0`. Polarity flipping and source/drain swapping live in
//! [`crate::mos`]; the cores only ever see a forward-biased NMOS-like
//! device.

use oblx_netlist::ModelCard;

/// Thermal voltage at room temperature (V).
pub(crate) const VT: f64 = 0.025852;
/// Gate-oxide permittivity (F/m).
const EPS_OX: f64 = 3.9 * 8.854e-12;

/// The MOS parameter set shared by every model level.
///
/// Parameters follow SPICE naming; unset card values take SPICE-flavoured
/// defaults. Geometry-independent — geometry arrives per evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct MosParams {
    /// Model level: 1 (Shichman–Hodges), 3 (semi-empirical), 4
    /// (BSIM1-style).
    pub level: u32,
    /// Zero-bias threshold voltage (V), NMOS-positive convention.
    pub vto: f64,
    /// Transconductance parameter `µ·Cox` (A/V²); used when `u0 == 0`.
    pub kp: f64,
    /// Low-field mobility (m²/V·s); overrides `kp` via `kp = u0·cox`.
    pub u0: f64,
    /// Body-effect coefficient γ (√V).
    pub gamma: f64,
    /// Surface potential 2φF (V).
    pub phi: f64,
    /// Channel-length modulation λ (1/V) — level 1.
    pub lambda: f64,
    /// Oxide thickness (m).
    pub tox: f64,
    /// Lateral diffusion (m); `leff = l − 2·ld`.
    pub ld: f64,
    /// Mobility degradation θ (1/V) — levels 3/4.
    pub theta: f64,
    /// Maximum carrier velocity (m/s) — level 3; 0 disables.
    pub vmax: f64,
    /// Static-feedback (DIBL) coefficient η (V/V) — levels 3/4.
    pub eta: f64,
    /// Saturation-region output-conductance coefficient κ — level 3.
    pub kappa: f64,
    /// BSIM flat-band voltage (V).
    pub vfb: f64,
    /// BSIM body-effect coefficients.
    pub k1: f64,
    /// Second-order body-effect correction.
    pub k2: f64,
    /// BSIM velocity-saturation coefficient u1 (m/V).
    pub u1: f64,
    /// Subthreshold ideality (BSIM weak-inversion tail); 0 disables.
    pub n_sub: f64,
    /// Gate-source overlap capacitance per width (F/m).
    pub cgso: f64,
    /// Gate-drain overlap capacitance per width (F/m).
    pub cgdo: f64,
    /// Gate-bulk overlap capacitance per length (F/m).
    pub cgbo: f64,
    /// Zero-bias junction capacitance per area (F/m²).
    pub cj: f64,
    /// Junction grading coefficient.
    pub mj: f64,
    /// Junction built-in potential (V).
    pub pb: f64,
    /// Sidewall capacitance per perimeter (F/m).
    pub cjsw: f64,
    /// Sidewall grading coefficient.
    pub mjsw: f64,
    /// Source/drain diffusion extent (m); sets junction area `w·ldif`.
    pub ldif: f64,
    /// Extrinsic drain resistance (Ω); > 0 adds an internal drain node.
    pub rd: f64,
    /// Extrinsic source resistance (Ω); > 0 adds an internal source node.
    pub rs: f64,
}

impl Default for MosParams {
    fn default() -> Self {
        MosParams {
            level: 1,
            vto: 0.7,
            kp: 2.0e-5,
            u0: 0.0,
            gamma: 0.4,
            phi: 0.65,
            lambda: 0.02,
            tox: 40e-9,
            ld: 0.0,
            theta: 0.0,
            vmax: 0.0,
            eta: 0.0,
            kappa: 0.2,
            vfb: -0.3,
            k1: 0.5,
            k2: 0.02,
            u1: 0.0,
            n_sub: 1.5,
            cgso: 2.0e-10,
            cgdo: 2.0e-10,
            cgbo: 2.0e-10,
            cj: 3.0e-4,
            mj: 0.5,
            pb: 0.8,
            cjsw: 3.0e-10,
            mjsw: 0.33,
            ldif: 2.5e-6,
            rd: 0.0,
            rs: 0.0,
        }
    }
}

impl MosParams {
    /// Builds parameters from a `.model` card, applying defaults for
    /// missing entries.
    pub fn from_card(card: &ModelCard) -> MosParams {
        let mut p = MosParams::default();
        let g = |k: &str, d: f64| card.params.get(k).copied().unwrap_or(d);
        p.level = g("level", 1.0) as u32;
        p.vto = g("vto", p.vto);
        p.kp = g("kp", p.kp);
        p.u0 = g("u0", p.u0);
        p.gamma = g("gamma", p.gamma);
        p.phi = g("phi", p.phi);
        p.lambda = g("lambda", p.lambda);
        p.tox = g("tox", p.tox);
        p.ld = g("ld", p.ld);
        p.theta = g("theta", p.theta);
        p.vmax = g("vmax", p.vmax);
        p.eta = g("eta", p.eta);
        p.kappa = g("kappa", p.kappa);
        p.vfb = g("vfb", p.vfb);
        p.k1 = g("k1", p.k1);
        p.k2 = g("k2", p.k2);
        p.u1 = g("u1", p.u1);
        p.n_sub = g("nsub", p.n_sub);
        p.cgso = g("cgso", p.cgso);
        p.cgdo = g("cgdo", p.cgdo);
        p.cgbo = g("cgbo", p.cgbo);
        p.cj = g("cj", p.cj);
        p.mj = g("mj", p.mj);
        p.pb = g("pb", p.pb);
        p.cjsw = g("cjsw", p.cjsw);
        p.mjsw = g("mjsw", p.mjsw);
        p.ldif = g("ldif", p.ldif);
        p.rd = g("rd", p.rd);
        p.rs = g("rs", p.rs);
        p
    }

    /// Oxide capacitance per unit area (F/m²).
    pub fn cox(&self) -> f64 {
        EPS_OX / self.tox
    }

    /// Effective channel length for `l` (m), floored at 10 nm.
    pub fn leff(&self, l: f64) -> f64 {
        (l - 2.0 * self.ld).max(1e-8)
    }

    /// The gain factor `kp_eff · w/leff` (A/V²).
    pub fn beta(&self, w: f64, l: f64) -> f64 {
        let kp = if self.u0 > 0.0 {
            self.u0 * self.cox()
        } else {
            self.kp
        };
        kp * w / self.leff(l)
    }
}

/// Operating region of a MOS device (normalized frame).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RawRegion {
    /// `vgs` below threshold.
    #[default]
    Cutoff,
    /// `vds < vdsat`.
    Triode,
    /// `vds ≥ vdsat`.
    Saturation,
}

/// Result of an I–V core evaluation in the normalized frame.
#[derive(Debug, Clone, Copy, Default)]
pub struct RawIv {
    /// Drain current, drain→source (A); ≥ 0 in the normalized frame.
    pub id: f64,
    /// ∂id/∂vgs (S).
    pub gm: f64,
    /// ∂id/∂vds (S).
    pub gds: f64,
    /// ∂id/∂vbs (S).
    pub gmbs: f64,
    /// Threshold voltage at this bias (V).
    pub vth: f64,
    /// Saturation voltage (V).
    pub vdsat: f64,
    /// Operating region.
    pub region: RawRegion,
}

/// Threshold voltage with body effect and a clamped square root so the
/// evaluator stays finite for any annealing-proposed voltage.
fn vth_body(vto: f64, gamma: f64, phi: f64, vbs: f64) -> (f64, f64) {
    let arg = (phi - vbs).max(1e-4);
    let sq = arg.sqrt();
    let vth = vto + gamma * (sq - phi.max(1e-4).sqrt());
    let dvth_dvbs = -gamma / (2.0 * sq);
    (vth, dvth_dvbs)
}

/// Level-1 (Shichman–Hodges) core with channel-length modulation — exact
/// analytic derivatives.
pub(crate) fn level1(p: &MosParams, w: f64, l: f64, vgs: f64, vds: f64, vbs: f64) -> RawIv {
    let (vth, dvth) = vth_body(p.vto, p.gamma, p.phi, vbs);
    let beta = p.beta(w, l);
    let vov = vgs - vth;
    let mut out = RawIv {
        vth,
        vdsat: vov.max(0.0),
        ..RawIv::default()
    };
    if vov <= 0.0 {
        out.region = RawRegion::Cutoff;
        return out;
    }
    let clm = 1.0 + p.lambda * vds;
    if vds < vov {
        out.region = RawRegion::Triode;
        out.id = beta * (vov - 0.5 * vds) * vds * clm;
        out.gm = beta * vds * clm;
        out.gds = beta * (vov - vds) * clm + beta * (vov - 0.5 * vds) * vds * p.lambda;
    } else {
        out.region = RawRegion::Saturation;
        out.id = 0.5 * beta * vov * vov * clm;
        out.gm = beta * vov * clm;
        out.gds = 0.5 * beta * vov * vov * p.lambda;
    }
    out.gmbs = -out.gm * dvth; // dvth < 0 ⇒ gmbs > 0
    out
}

/// Level-3-style semi-empirical core: mobility degradation (θ), velocity
/// saturation (vmax), DIBL (η) and κ-controlled output conductance.
/// Derivatives are obtained by central differences on the current
/// equation — the encapsulation boundary makes this invisible to the
/// synthesis formulation.
pub(crate) fn level3(p: &MosParams, w: f64, l: f64, vgs: f64, vds: f64, vbs: f64) -> RawIv {
    numeric_iv(p, w, l, vgs, vds, vbs, level3_id)
}

fn level3_id(
    p: &MosParams,
    w: f64,
    l: f64,
    vgs: f64,
    vds: f64,
    vbs: f64,
) -> (f64, f64, f64, RawRegion) {
    let (vth0, _) = vth_body(p.vto, p.gamma, p.phi, vbs);
    // DIBL washes out with channel length (reference length 2 µm).
    let eta = p.eta * (2.0e-6 / p.leff(l)).min(4.0);
    let vth = vth0 - eta * vds;
    let vov = vgs - vth;
    if vov <= 0.0 {
        return (0.0, vth, 0.0, RawRegion::Cutoff);
    }
    let leff = p.leff(l);
    let ueff_factor = 1.0 / (1.0 + p.theta * vov);
    let beta = p.beta(w, l) * ueff_factor;
    // Velocity-saturation critical voltage.
    let u0 = if p.u0 > 0.0 { p.u0 } else { p.kp / p.cox() };
    let vc = if p.vmax > 0.0 {
        p.vmax * leff / (u0 * ueff_factor)
    } else {
        f64::INFINITY
    };
    let vdsat = if vc.is_finite() {
        vov * vc / (vov + vc)
    } else {
        vov
    };
    let vel = |v: f64| 1.0 + if vc.is_finite() { v / vc } else { 0.0 };
    if vds < vdsat {
        let id = beta * (vov - 0.5 * vds) * vds / vel(vds);
        (id, vth, vdsat, RawRegion::Triode)
    } else {
        let idsat = beta * (vov - 0.5 * vdsat) * vdsat / vel(vdsat);
        let id = idsat * (1.0 + p.kappa * (vds - vdsat) / leff.max(1e-7) * 1e-7);
        (id, vth, vdsat, RawRegion::Saturation)
    }
}

/// BSIM1-style core: flat-band-referenced threshold with first- and
/// second-order body effect, DIBL, vertical-field mobility degradation
/// and velocity saturation, plus a weak-inversion exponential tail that
/// keeps the device conductive (and Newton-friendly) below threshold.
pub(crate) fn bsim1(p: &MosParams, w: f64, l: f64, vgs: f64, vds: f64, vbs: f64) -> RawIv {
    numeric_iv(p, w, l, vgs, vds, vbs, bsim1_id)
}

fn bsim1_id(
    p: &MosParams,
    w: f64,
    l: f64,
    vgs: f64,
    vds: f64,
    vbs: f64,
) -> (f64, f64, f64, RawRegion) {
    let sphi = (p.phi - vbs).max(1e-4);
    let leff = p.leff(l);
    // Short-channel effects scale away with channel length: the card's
    // eta is the value at a 2 µm reference length, as is the implicit
    // channel-length-modulation coefficient below. This is the physical
    // lever (longer L → higher intrinsic gain) that cascode sizing
    // exploits.
    let lscale = (2.0e-6 / leff).min(4.0);
    let eta = p.eta * lscale;
    let vth = p.vfb + p.phi + p.k1 * sphi.sqrt() - p.k2 * sphi - eta * vds;
    let vov = vgs - vth;
    // Body-effect linearization coefficient.
    let g = 1.0 - 1.0 / (1.744 + 0.8364 * sphi);
    let a = 1.0 + g * p.k1 / (2.0 * sphi.sqrt());
    let beta0 = p.beta(w, l);
    let nvt = p.n_sub.max(1.0) * VT;

    // Weak-inversion tail, saturating at vov = 0 so the total current is
    // continuous across threshold (the tail simply rides along as a
    // constant floor in strong inversion).
    let i0 = 0.5 * beta0 / a * nvt * nvt;
    let vds_factor = 1.0 - (-vds / VT).exp();
    let tail = i0 * (vov.min(0.0) / nvt).exp() * vds_factor;
    if vov <= 0.0 {
        return (tail, vth, 0.0, RawRegion::Cutoff);
    }
    let mob = 1.0 / (1.0 + p.theta * vov);
    let beta = beta0 * mob;
    let velo = |v: f64| 1.0 + p.u1 * v / leff;
    let vdsat = (vov / a) / (1.0 + p.u1 * vov / (a * leff)).sqrt();
    if vds < vdsat {
        let id = tail + beta * (vov - 0.5 * a * vds) * vds / velo(vds);
        (id, vth, vdsat, RawRegion::Triode)
    } else {
        let idsat = beta * (vov - 0.5 * a * vdsat) * vdsat / velo(vdsat);
        // Channel-length modulation, 1/leff like the DIBL term: the
        // 0.01/V reference value applies at leff = 2 µm.
        let id = tail + idsat * (1.0 + 0.01 * lscale * (vds - vdsat));
        (id, vth, vdsat, RawRegion::Saturation)
    }
}

/// Signature of a raw I–V equation: `(params, w, l, vgs, vds, vbs) →
/// (id, vth, vdsat, region)`.
type IvFn = fn(&MosParams, f64, f64, f64, f64, f64) -> (f64, f64, f64, RawRegion);

/// Central-difference derivative wrapper shared by the level-3 and BSIM
/// cores.
fn numeric_iv(p: &MosParams, w: f64, l: f64, vgs: f64, vds: f64, vbs: f64, f: IvFn) -> RawIv {
    let (id, vth, vdsat, region) = f(p, w, l, vgs, vds, vbs);
    const H: f64 = 1e-6;
    let dg = (f(p, w, l, vgs + H, vds, vbs).0 - f(p, w, l, vgs - H, vds, vbs).0) / (2.0 * H);
    // One-sided at the vds = 0 boundary to stay inside the normalized
    // frame.
    let dd = if vds >= H {
        (f(p, w, l, vgs, vds + H, vbs).0 - f(p, w, l, vgs, vds - H, vbs).0) / (2.0 * H)
    } else {
        (f(p, w, l, vgs, vds + H, vbs).0 - f(p, w, l, vgs, vds, vbs).0) / H
    };
    let db = (f(p, w, l, vgs, vds, vbs + H).0 - f(p, w, l, vgs, vds, vbs - H).0) / (2.0 * H);
    RawIv {
        id,
        gm: dg,
        gds: dd,
        gmbs: db,
        vth,
        vdsat,
        region,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nmos_params() -> MosParams {
        MosParams {
            level: 1,
            vto: 0.7,
            kp: 1.0e-4,
            gamma: 0.45,
            phi: 0.65,
            lambda: 0.04,
            ..MosParams::default()
        }
    }

    #[test]
    fn level1_square_law_in_saturation() {
        let p = nmos_params();
        let iv = level1(&p, 10e-6, 1e-6, 1.7, 3.0, 0.0);
        assert_eq!(iv.region, RawRegion::Saturation);
        // id = 0.5·kp·(w/l)·vov²·(1+λvds) = 0.5·1e-4·10·1·1.12
        assert!((iv.id - 0.5 * 1e-4 * 10.0 * 1.0 * 1.12).abs() < 1e-9);
        assert!(iv.gm > 0.0 && iv.gds > 0.0 && iv.gmbs > 0.0);
    }

    #[test]
    fn level1_cutoff() {
        let p = nmos_params();
        let iv = level1(&p, 10e-6, 1e-6, 0.3, 2.0, 0.0);
        assert_eq!(iv.region, RawRegion::Cutoff);
        assert_eq!(iv.id, 0.0);
    }

    #[test]
    fn level1_continuous_at_vdsat() {
        let p = nmos_params();
        let vov = 0.8;
        let below = level1(&p, 10e-6, 1e-6, 0.7 + vov, vov - 1e-9, 0.0);
        let above = level1(&p, 10e-6, 1e-6, 0.7 + vov, vov + 1e-9, 0.0);
        assert!((below.id - above.id).abs() < 1e-9 * above.id.max(1e-12));
        assert!((below.gm - above.gm).abs() / above.gm < 1e-6);
    }

    #[test]
    fn level1_body_effect_raises_threshold() {
        let p = nmos_params();
        let no_body = level1(&p, 10e-6, 1e-6, 1.5, 2.0, 0.0);
        let with_body = level1(&p, 10e-6, 1e-6, 1.5, 2.0, -2.0);
        assert!(with_body.vth > no_body.vth);
        assert!(with_body.id < no_body.id);
    }

    fn check_derivatives(
        core: fn(&MosParams, f64, f64, f64, f64, f64) -> RawIv,
        p: &MosParams,
        vgs: f64,
        vds: f64,
        vbs: f64,
    ) {
        let w = 20e-6;
        let l = 2e-6;
        let h = 1e-5;
        let iv = core(p, w, l, vgs, vds, vbs);
        let gm_fd =
            (core(p, w, l, vgs + h, vds, vbs).id - core(p, w, l, vgs - h, vds, vbs).id) / (2.0 * h);
        let gds_fd =
            (core(p, w, l, vgs, vds + h, vbs).id - core(p, w, l, vgs, vds - h, vbs).id) / (2.0 * h);
        let gmbs_fd =
            (core(p, w, l, vgs, vds, vbs + h).id - core(p, w, l, vgs, vds, vbs - h).id) / (2.0 * h);
        let scale = iv.gm.abs().max(1e-9);
        assert!(
            (iv.gm - gm_fd).abs() / scale < 2e-3,
            "gm {} vs fd {}",
            iv.gm,
            gm_fd
        );
        assert!(
            (iv.gds - gds_fd).abs() / iv.gds.abs().max(1e-9) < 2e-3,
            "gds {} vs fd {}",
            iv.gds,
            gds_fd
        );
        assert!(
            (iv.gmbs - gmbs_fd).abs() / iv.gmbs.abs().max(1e-9) < 2e-3,
            "gmbs {} vs fd {}",
            iv.gmbs,
            gmbs_fd
        );
    }

    #[test]
    fn level1_derivatives_match_finite_differences() {
        let p = nmos_params();
        check_derivatives(level1, &p, 1.6, 2.5, -0.5); // saturation
        check_derivatives(level1, &p, 2.5, 0.4, -0.5); // triode
    }

    #[test]
    fn level3_derivatives_consistent() {
        let p = MosParams {
            level: 3,
            theta: 0.1,
            vmax: 1.5e5,
            eta: 0.01,
            u0: 0.06,
            ..nmos_params()
        };
        check_derivatives(level3, &p, 1.6, 2.5, -0.5);
        check_derivatives(level3, &p, 2.5, 0.4, 0.0);
    }

    #[test]
    fn bsim_derivatives_consistent() {
        let p = MosParams {
            level: 4,
            theta: 0.08,
            u1: 1e-7,
            eta: 0.02,
            ..nmos_params()
        };
        check_derivatives(bsim1, &p, 1.6, 2.5, -0.5);
        check_derivatives(bsim1, &p, 2.5, 0.4, 0.0);
    }

    #[test]
    fn bsim_subthreshold_tail_is_positive_and_increasing() {
        let p = MosParams {
            level: 4,
            ..nmos_params()
        };
        let lo = bsim1(&p, 10e-6, 2e-6, 0.4, 2.0, 0.0);
        let hi = bsim1(&p, 10e-6, 2e-6, 0.5, 2.0, 0.0);
        assert!(lo.id > 0.0);
        assert!(hi.id > lo.id);
        assert_eq!(lo.region, RawRegion::Cutoff);
    }

    #[test]
    fn velocity_saturation_reduces_current() {
        let base = MosParams {
            level: 3,
            u0: 0.06,
            vmax: 0.0,
            ..nmos_params()
        };
        let vsat = MosParams {
            vmax: 1.0e5,
            ..base.clone()
        };
        let i_nosat = level3(&base, 10e-6, 1e-6, 2.5, 3.0, 0.0);
        let i_sat = level3(&vsat, 10e-6, 1e-6, 2.5, 3.0, 0.0);
        assert!(i_sat.id < i_nosat.id);
        assert!(i_sat.vdsat < i_nosat.vdsat);
    }

    #[test]
    fn monotone_in_vgs_strong_inversion() {
        for core in [
            level1 as fn(&MosParams, f64, f64, f64, f64, f64) -> RawIv,
            level3,
            bsim1,
        ] {
            let p = MosParams {
                theta: 0.05,
                u0: 0.06,
                ..nmos_params()
            };
            let mut last = -1.0;
            for i in 0..20 {
                let vgs = 1.0 + 0.1 * i as f64;
                let iv = core(&p, 10e-6, 2e-6, vgs, 3.0, 0.0);
                assert!(iv.id > last, "id must increase with vgs");
                last = iv.id;
            }
        }
    }

    #[test]
    fn params_from_card() {
        use std::collections::HashMap;
        let card = ModelCard {
            name: "n".into(),
            kind: "nmos".into(),
            params: HashMap::from([
                ("level".to_string(), 3.0),
                ("vto".to_string(), 0.75),
                ("tox".to_string(), 2.0e-8),
            ]),
        };
        let p = MosParams::from_card(&card);
        assert_eq!(p.level, 3);
        assert_eq!(p.vto, 0.75);
        assert_eq!(p.tox, 2.0e-8);
        assert_eq!(p.kp, MosParams::default().kp);
        assert!(p.cox() > 1e-3); // ~1.7 mF/m²
    }
}
