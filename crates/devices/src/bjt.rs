//! Gummel–Poon bipolar transistor evaluator (simplified: forward/reverse
//! Ebers–Moll core with Early effect, betas, and junction/diffusion
//! capacitances).

use crate::caps::junction_cap;
use crate::mos_iv::VT;
use oblx_netlist::ModelCard;

/// Gummel–Poon parameter set (SPICE naming, subset).
#[derive(Debug, Clone, PartialEq)]
pub struct BjtParams {
    /// Saturation current (A).
    pub is: f64,
    /// Forward beta.
    pub bf: f64,
    /// Reverse beta.
    pub br: f64,
    /// Forward Early voltage (V); 0 disables.
    pub vaf: f64,
    /// Forward transit time (s).
    pub tf: f64,
    /// Base–emitter zero-bias depletion capacitance (F).
    pub cje: f64,
    /// Base–collector zero-bias depletion capacitance (F).
    pub cjc: f64,
    /// Junction grading coefficient.
    pub mj: f64,
    /// Junction built-in potential (V).
    pub vj: f64,
    /// Base resistance (Ω); > 0 adds an internal base node.
    pub rb: f64,
}

impl Default for BjtParams {
    fn default() -> Self {
        BjtParams {
            is: 1e-16,
            bf: 100.0,
            br: 1.0,
            vaf: 50.0,
            tf: 0.3e-9,
            cje: 1e-12,
            cjc: 0.5e-12,
            mj: 0.33,
            vj: 0.75,
            rb: 0.0,
        }
    }
}

impl BjtParams {
    /// Builds parameters from a `.model` card, with defaults for missing
    /// entries.
    pub fn from_card(card: &ModelCard) -> BjtParams {
        let mut p = BjtParams::default();
        let g = |k: &str, d: f64| card.params.get(k).copied().unwrap_or(d);
        p.is = g("is", p.is);
        p.bf = g("bf", p.bf);
        p.br = g("br", p.br);
        p.vaf = g("vaf", p.vaf);
        p.tf = g("tf", p.tf);
        p.cje = g("cje", p.cje);
        p.cjc = g("cjc", p.cjc);
        p.mj = g("mj", p.mj);
        p.vj = g("vj", p.vj);
        p.rb = g("rb", p.rb);
        p
    }
}

/// A BJT operating point in the terminal frame (currents *into* the
/// collector and base terminals; emitter current is `−(ic + ib)`).
///
/// Derivative fields give the terminal-current Jacobian:
///
/// ```text
/// ∂I_c/∂v(b,e) = gm_be    ∂I_c/∂v(c,e) = go
/// ∂I_b/∂v(b,e) = gpi      ∂I_b/∂v(c,e) = gmu
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct BjtOp {
    /// Collector terminal current (A).
    pub ic: f64,
    /// Base terminal current (A).
    pub ib: f64,
    /// ∂ic/∂vbe (S).
    pub gm_be: f64,
    /// ∂ic/∂vce (S).
    pub go: f64,
    /// ∂ib/∂vbe (S).
    pub gpi: f64,
    /// ∂ib/∂vce (S).
    pub gmu: f64,
    /// Base–emitter small-signal capacitance (diffusion + depletion).
    pub cpi: f64,
    /// Base–collector small-signal capacitance.
    pub cmu: f64,
    /// `true` when forward-active.
    pub forward_active: bool,
}

impl BjtOp {
    /// Looks up a named operating-point quantity. Known names: `ic`,
    /// `ib`, `gm`, `go`, `gpi`, `cpi`, `cmu`, `beta`.
    pub fn quantity(&self, name: &str) -> Option<f64> {
        Some(match name {
            "ic" => self.ic,
            "ib" => self.ib,
            "gm" => self.gm_be,
            "go" => self.go,
            "gpi" => self.gpi,
            "cpi" => self.cpi,
            "cmu" => self.cmu,
            "beta" => {
                if self.ib.abs() > 0.0 {
                    self.ic / self.ib
                } else {
                    0.0
                }
            }
            _ => return None,
        })
    }
}

/// Exponential with a linear extension beyond `x = LIM`, keeping value
/// and derivative continuous so Newton iterations cannot overflow.
fn exp_lim(x: f64) -> (f64, f64) {
    const LIM: f64 = 40.0;
    if x < LIM {
        let e = x.exp();
        (e, e)
    } else {
        let e = LIM.exp();
        (e * (1.0 + (x - LIM)), e)
    }
}

/// An encapsulated bipolar evaluator.
///
/// # Examples
///
/// ```
/// use oblx_devices::{BjtModel, BjtParams};
///
/// let q = BjtModel::new("npn1", true, BjtParams::default());
/// let op = q.op(1.0, 2.5, 0.7, 0.0); // area, vc, vb, ve
/// assert!(op.ic > 0.0 && op.forward_active);
/// assert!((op.ic / op.ib - 100.0).abs() < 10.0); // ≈ bf (Early-boosted)
/// ```
#[derive(Debug, Clone)]
pub struct BjtModel {
    name: String,
    npn: bool,
    params: BjtParams,
}

impl BjtModel {
    /// Creates an evaluator. `npn = false` gives a PNP (all voltages and
    /// currents mirrored).
    pub fn new(name: impl Into<String>, npn: bool, params: BjtParams) -> Self {
        BjtModel {
            name: name.into(),
            npn,
            params,
        }
    }

    /// Creates an evaluator from a `.model` card (kind `npn`/`pnp`).
    pub fn from_card(card: &ModelCard) -> Option<BjtModel> {
        let npn = match card.kind.as_str() {
            "npn" => true,
            "pnp" => false,
            _ => return None,
        };
        Some(BjtModel::new(
            card.name.clone(),
            npn,
            BjtParams::from_card(card),
        ))
    }

    /// Model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// `true` for NPN.
    pub fn is_npn(&self) -> bool {
        self.npn
    }

    /// The underlying parameter set.
    pub fn params(&self) -> &BjtParams {
        &self.params
    }

    /// Evaluates the operating point at absolute terminal voltages
    /// `(vc, vb, ve)`, scaled by the emitter `area` multiplier.
    pub fn op(&self, area: f64, vc: f64, vb: f64, ve: f64) -> BjtOp {
        let s = if self.npn { 1.0 } else { -1.0 };
        let vbe = s * (vb - ve);
        let vbc = s * (vb - vc);
        let p = &self.params;
        let is = p.is * area.max(1e-3);

        let (ef, def) = exp_lim(vbe / VT);
        let (er, der) = exp_lim(vbc / VT);
        // Transport current with forward Early effect.
        let early = if p.vaf > 0.0 {
            1.0 + s * (vc - ve) / p.vaf
        } else {
            1.0
        }
        .max(0.1);
        let icc = is * (ef - er) * early;
        let ibe = is / p.bf * (ef - 1.0);
        let ibc = is / p.br * (er - 1.0);

        let ic_n = icc - ibc;
        let ib_n = ibe + ibc;

        // Derivatives in the normalized frame. vce = vbe − vbc.
        let dicc_dvbe = is * def / VT * early;
        let dicc_dvbc = -is * der / VT * early;
        let dicc_dvce = if p.vaf > 0.0 {
            is * (ef - er) / p.vaf
        } else {
            0.0
        };
        let dibe_dvbe = is / p.bf * def / VT;
        let dibc_dvbc = is / p.br * der / VT;

        // Terminal-frame Jacobian entries (vbc = vbe − vce):
        // ic(vbe, vce) = icc(vbe, vbe−vce, vce) − ibc(vbe−vce)
        let gm_be = dicc_dvbe + dicc_dvbc - dibc_dvbc;
        let go = -dicc_dvbc + dicc_dvce + dibc_dvbc;
        let gpi = dibe_dvbe + dibc_dvbc;
        let gmu = -dibc_dvbc;

        // Capacitances: diffusion (tf·gm) + depletion.
        let cpi = p.tf * dicc_dvbe.max(0.0) + junction_cap(p.cje * area, vbe, p.vj, p.mj);
        let cmu = junction_cap(p.cjc * area, vbc, p.vj, p.mj);

        BjtOp {
            ic: s * ic_n,
            ib: s * ib_n,
            gm_be,
            go,
            gpi,
            gmu,
            cpi,
            cmu,
            forward_active: vbe > 0.5 && vbc < 0.3,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn npn() -> BjtModel {
        BjtModel::new("q", true, BjtParams::default())
    }

    #[test]
    fn forward_active_basics() {
        let op = npn().op(1.0, 3.0, 0.7, 0.0);
        assert!(op.forward_active);
        assert!(op.ic > 0.0 && op.ib > 0.0);
        let beta = op.ic / op.ib;
        assert!((beta - 100.0).abs() / 100.0 < 0.1, "beta = {beta}");
        // gm ≈ ic/vt
        assert!((op.gm_be - op.ic / VT).abs() / (op.ic / VT) < 0.05);
    }

    #[test]
    fn early_effect_gives_finite_output_conductance() {
        let q = npn();
        let lo = q.op(1.0, 2.0, 0.7, 0.0);
        let hi = q.op(1.0, 4.0, 0.7, 0.0);
        assert!(hi.ic > lo.ic);
        assert!(lo.go > 0.0);
        // go ≈ ic/vaf
        assert!((lo.go - lo.ic / 50.0).abs() / (lo.ic / 50.0) < 0.3);
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let q = npn();
        let (vc, vb, ve) = (3.0, 0.68, 0.0);
        let op = q.op(1.0, vc, vb, ve);
        let h = 1e-7;
        // gm_be: wiggle base (vce fixed means wiggling vb only changes vbe... and vbc)
        let fd_gm = (q.op(1.0, vc, vb + h, ve).ic - q.op(1.0, vc, vb - h, ve).ic) / (2.0 * h);
        let fd_go = (q.op(1.0, vc + h, vb, ve).ic - q.op(1.0, vc - h, vb, ve).ic) / (2.0 * h);
        let fd_gpi = (q.op(1.0, vc, vb + h, ve).ib - q.op(1.0, vc, vb - h, ve).ib) / (2.0 * h);
        assert!((op.gm_be - fd_gm).abs() / fd_gm.abs().max(1e-12) < 1e-3);
        assert!((op.go - fd_go).abs() / fd_go.abs().max(1e-12) < 1e-3);
        assert!((op.gpi - fd_gpi).abs() / fd_gpi.abs().max(1e-12) < 1e-3);
    }

    #[test]
    fn pnp_mirrors_npn() {
        let n = npn();
        let p = BjtModel::new("q", false, BjtParams::default());
        let opn = n.op(1.0, 3.0, 0.7, 0.0);
        let opp = p.op(1.0, -3.0, -0.7, 0.0);
        assert!((opn.ic + opp.ic).abs() < 1e-12 * opn.ic.abs());
        assert!((opn.ib + opp.ib).abs() < 1e-12 * opn.ib.abs());
        assert!((opn.gm_be - opp.gm_be).abs() < 1e-9 * opn.gm_be);
    }

    #[test]
    fn overflow_protected() {
        let op = npn().op(1.0, 100.0, 90.0, 0.0);
        assert!(op.ic.is_finite() && op.ib.is_finite());
        assert!(op.gm_be.is_finite());
    }

    #[test]
    fn area_scales_current() {
        let q = npn();
        let a1 = q.op(1.0, 3.0, 0.65, 0.0);
        let a4 = q.op(4.0, 3.0, 0.65, 0.0);
        assert!((a4.ic / a1.ic - 4.0).abs() < 1e-9);
    }

    #[test]
    fn quantities() {
        let op = npn().op(1.0, 3.0, 0.7, 0.0);
        assert_eq!(op.quantity("ic"), Some(op.ic));
        assert!(op.quantity("beta").unwrap() > 50.0);
        assert_eq!(op.quantity("nope"), None);
    }
}
