//! The model library: builds encapsulated evaluators from `.model` cards
//! and hands them out by name.

use crate::{BjtModel, DiodeModel, MosModel};
use oblx_netlist::ModelCard;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// A device evaluator of any family.
#[derive(Debug, Clone)]
pub enum DeviceModel {
    /// A MOS evaluator.
    Mos(MosModel),
    /// A bipolar evaluator.
    Bjt(BjtModel),
    /// A junction-diode evaluator.
    Diode(DiodeModel),
}

impl DeviceModel {
    /// The model's name.
    pub fn name(&self) -> &str {
        match self {
            DeviceModel::Mos(m) => m.name(),
            DeviceModel::Bjt(b) => b.name(),
            DeviceModel::Diode(d) => d.name(),
        }
    }
}

/// Error building or querying a [`ModelLibrary`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// A `.model` card has an unsupported kind.
    UnsupportedKind {
        /// Model name.
        name: String,
        /// Offending kind string.
        kind: String,
    },
    /// A device referenced a model that is not in the library.
    Missing(String),
    /// A device referenced a model of the wrong family (e.g. a MOSFET
    /// card bound to an `npn` model).
    WrongFamily(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::UnsupportedKind { name, kind } => {
                write!(f, "model `{name}` has unsupported kind `{kind}`")
            }
            ModelError::Missing(n) => write!(f, "model `{n}` is not defined"),
            ModelError::WrongFamily(n) => write!(f, "model `{n}` is the wrong device family"),
        }
    }
}

impl Error for ModelError {}

/// A name-indexed set of device evaluators.
///
/// # Examples
///
/// ```
/// use oblx_devices::ModelLibrary;
/// use oblx_netlist::parse_problem;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let p = parse_problem(".model n nmos level=1 vto=0.7\n.model q npn bf=80\n")?;
/// let lib = ModelLibrary::from_cards(&p.models)?;
/// assert!(lib.mos("n").is_ok());
/// assert!(lib.bjt("q").is_ok());
/// assert!(lib.mos("q").is_err());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct ModelLibrary {
    models: HashMap<String, DeviceModel>,
}

impl ModelLibrary {
    /// Creates an empty library.
    pub fn new() -> Self {
        ModelLibrary::default()
    }

    /// Builds a library from `.model` cards.
    ///
    /// # Errors
    ///
    /// [`ModelError::UnsupportedKind`] for kinds other than
    /// `nmos`/`pmos`/`npn`/`pnp`.
    pub fn from_cards(cards: &[ModelCard]) -> Result<Self, ModelError> {
        let mut lib = ModelLibrary::new();
        for card in cards {
            lib.add_card(card)?;
        }
        Ok(lib)
    }

    /// Adds one `.model` card.
    ///
    /// # Errors
    ///
    /// [`ModelError::UnsupportedKind`] for unknown kinds.
    pub fn add_card(&mut self, card: &ModelCard) -> Result<(), ModelError> {
        let model = if let Some(m) = MosModel::from_card(card) {
            DeviceModel::Mos(m)
        } else if let Some(b) = BjtModel::from_card(card) {
            DeviceModel::Bjt(b)
        } else if let Some(d) = DiodeModel::from_card(card) {
            DeviceModel::Diode(d)
        } else {
            return Err(ModelError::UnsupportedKind {
                name: card.name.clone(),
                kind: card.kind.clone(),
            });
        };
        self.models.insert(card.name.clone(), model);
        Ok(())
    }

    /// Inserts an already-built model (used by the process decks).
    pub fn insert(&mut self, model: DeviceModel) {
        self.models.insert(model.name().to_string(), model);
    }

    /// Looks up any model by name.
    pub fn get(&self, name: &str) -> Option<&DeviceModel> {
        self.models.get(name)
    }

    /// Number of models in the library.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// `true` when the library holds no models.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// Looks up a MOS model by name.
    ///
    /// # Errors
    ///
    /// [`ModelError::Missing`] / [`ModelError::WrongFamily`].
    pub fn mos(&self, name: &str) -> Result<&MosModel, ModelError> {
        match self.models.get(name) {
            Some(DeviceModel::Mos(m)) => Ok(m),
            Some(_) => Err(ModelError::WrongFamily(name.to_string())),
            None => Err(ModelError::Missing(name.to_string())),
        }
    }

    /// Looks up a bipolar model by name.
    ///
    /// # Errors
    ///
    /// [`ModelError::Missing`] / [`ModelError::WrongFamily`].
    pub fn bjt(&self, name: &str) -> Result<&BjtModel, ModelError> {
        match self.models.get(name) {
            Some(DeviceModel::Bjt(b)) => Ok(b),
            Some(_) => Err(ModelError::WrongFamily(name.to_string())),
            None => Err(ModelError::Missing(name.to_string())),
        }
    }

    /// Looks up a diode model by name.
    ///
    /// # Errors
    ///
    /// [`ModelError::Missing`] / [`ModelError::WrongFamily`].
    pub fn diode(&self, name: &str) -> Result<&DiodeModel, ModelError> {
        match self.models.get(name) {
            Some(DeviceModel::Diode(d)) => Ok(d),
            Some(_) => Err(ModelError::WrongFamily(name.to_string())),
            None => Err(ModelError::Missing(name.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap as Map;

    fn card(name: &str, kind: &str) -> ModelCard {
        ModelCard {
            name: name.into(),
            kind: kind.into(),
            params: Map::new(),
        }
    }

    #[test]
    fn builds_all_families() {
        let cards = vec![
            card("n", "nmos"),
            card("p", "pmos"),
            card("q", "npn"),
            card("qp", "pnp"),
        ];
        let lib = ModelLibrary::from_cards(&cards).unwrap();
        assert_eq!(lib.len(), 4);
        assert!(lib.mos("n").is_ok());
        assert!(lib.mos("p").is_ok());
        assert!(lib.bjt("q").is_ok());
        assert!(lib.bjt("qp").is_ok());
    }

    #[test]
    fn unsupported_kind_rejected() {
        let err = ModelLibrary::from_cards(&[card("j", "jfet")]).unwrap_err();
        assert!(matches!(err, ModelError::UnsupportedKind { .. }));
    }

    #[test]
    fn diode_models_supported() {
        let lib = ModelLibrary::from_cards(&[card("dj", "d")]).unwrap();
        assert!(lib.diode("dj").is_ok());
        assert!(lib.mos("dj").is_err());
    }

    #[test]
    fn wrong_family_and_missing() {
        let lib = ModelLibrary::from_cards(&[card("n", "nmos")]).unwrap();
        assert_eq!(
            lib.bjt("n").unwrap_err(),
            ModelError::WrongFamily("n".into())
        );
        assert_eq!(lib.mos("zz").unwrap_err(), ModelError::Missing("zz".into()));
    }

    #[test]
    fn later_cards_override() {
        let mut c2 = card("n", "nmos");
        c2.params.insert("vto".into(), 0.9);
        let lib = ModelLibrary::from_cards(&[card("n", "nmos"), c2]).unwrap();
        assert_eq!(lib.mos("n").unwrap().params().vto, 0.9);
    }
}
