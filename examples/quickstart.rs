//! Quickstart: size the Section IV differential amplifier.
//!
//! This is the paper's walkthrough example: a differential pair with
//! current-source loads, four design variables (`W`, `L`, `I`, `Vb`),
//! one ac test jig, and three goals. Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use astrx_oblx::oblx::{synthesize, SynthesisOptions};
use astrx_oblx::report::{eng, pair, TextTable};
use astrx_oblx::verify::verify_result;

const DIFFAMP: &str = include_str!("../crates/core/src/testdata/diffamp.ox");

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let compiled = astrx_oblx::astrx::compile_source(DIFFAMP)?;
    println!("ASTRX analysis:");
    println!("  user variables      : {}", compiled.stats.user_vars);
    println!("  relaxed-dc nodes    : {}", compiled.stats.node_vars);
    println!("  cost-function terms : {}", compiled.stats.terms);
    println!("  emitted C lines     : {}", compiled.stats.c_lines);
    println!();

    let opts = SynthesisOptions {
        moves_budget: std::env::var("OBLX_MOVES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(20_000),
        seed: 7,
        ..SynthesisOptions::default()
    };
    println!("OBLX annealing ({} moves)…", opts.moves_budget);
    let result = synthesize(&compiled, &opts)?;
    println!(
        "  best cost {:.4}  ({} evaluations, {:.2} ms/eval, {:.1} s wall)",
        result.best_cost, result.evaluations, result.ms_per_eval, result.wall_seconds
    );
    println!("  worst KCL residual {:.3e} A", result.kcl_max);
    println!();

    println!("Synthesized design variables:");
    for (name, value) in &result.variables {
        println!("  {name:<4} = {}", eng(*value));
    }
    println!();

    let verified = verify_result(&compiled, &result)?;
    let mut t = TextTable::new(vec!["goal", "OBLX / simulation"]);
    for (name, p, s) in &verified.rows {
        t.row(vec![name.clone(), pair(*p, *s)]);
    }
    println!("{}", t.render());
    println!(
        "worst OBLX-vs-simulation discrepancy: {:.2}%",
        100.0 * verified.worst_relative_error()
    );
    Ok(())
}
