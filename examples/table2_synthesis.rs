//! Table 2 regeneration: synthesize each CMOS benchmark and compare
//! OBLX's AWE-based predictions against the independent simulator.
//!
//! Environment knobs: `OBLX_MOVES` (default 60000), `OBLX_SEEDS`
//! (comma-separated, default "1,2,3" — the paper ran 5–10 annealing
//! runs overnight and kept the best), `OBLX_BENCH` (comma-separated
//! benchmark names, default: the five Table 2 circuits).

use astrx_oblx::bench_suite;
use astrx_oblx::oblx::{synthesize, SynthesisOptions};
use astrx_oblx::report::{eng, pair, TextTable};
use astrx_oblx::verify::verify_result;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let moves: usize = std::env::var("OBLX_MOVES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(60_000);
    let seeds: Vec<u64> = std::env::var("OBLX_SEEDS")
        .unwrap_or_else(|_| "1,2,3".to_string())
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect();
    let which = std::env::var("OBLX_BENCH")
        .unwrap_or_else(|_| "Simple OTA,OTA,Two-Stage,Folded Cascode,BiCMOS Two-Stage".to_string());

    for name in which.split(',') {
        let b = match bench_suite::by_name(name.trim()) {
            Some(b) => b,
            None => {
                eprintln!("unknown benchmark `{name}`");
                continue;
            }
        };
        println!(
            "=== {} ({}; {} moves x {} seeds) ===",
            b.name,
            b.deck.label(),
            moves,
            seeds.len()
        );
        let compiled = astrx_oblx::astrx::compile(b.problem()?)?;
        // The paper's protocol: several annealing runs, keep the best —
        // compared under a frozen weight set so the adapted weights of
        // different runs stay commensurable.
        let mut best: Option<(f64, astrx_oblx::oblx::SynthesisResult)> = None;
        for &seed in &seeds {
            let r = synthesize(
                &compiled,
                &SynthesisOptions {
                    moves_budget: moves,
                    seed,
                    awe_order: std::env::var("OBLX_AWE_ORDER")
                        .ok()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or(astrx_oblx::cost::AWE_ORDER),
                    ..SynthesisOptions::default()
                },
            )?;
            let score = astrx_oblx::oblx::fixed_cost(&compiled, &r.state);
            if best.as_ref().is_none_or(|(s, _)| score < *s) {
                best = Some((score, r));
            }
        }
        let (_, result) = best.expect("at least one seed");
        println!(
            "cost {:.3}  evals {}  {:.3} ms/eval  {:.1} s wall  kcl {:.2e} A",
            result.best_cost,
            result.evaluations,
            result.ms_per_eval,
            result.wall_seconds,
            result.kcl_max
        );
        match verify_result(&compiled, &result) {
            Ok(v) => {
                let mut t = TextTable::new(vec!["attribute", "spec", "OBLX / simulation"]);
                for ((name, p, s), goal) in v.rows.iter().zip(compiled.problem.specs.iter()) {
                    let dir = if goal.kind == oblx_netlist::SpecKind::Objective {
                        if goal.maximize() {
                            "max"
                        } else {
                            "min"
                        }
                    } else if goal.maximize() {
                        ">="
                    } else {
                        "<="
                    };
                    t.row(vec![
                        name.clone(),
                        format!("{dir} {}", eng(goal.good)),
                        pair(*p, *s),
                    ]);
                }
                println!("{}", t.render());
                println!(
                    "worst prediction error {:.2}%  (simulated power {}, area {} m^2)",
                    100.0 * v.worst_relative_error(),
                    eng(v.power),
                    eng(v.area)
                );
            }
            Err(e) => println!("verification failed: {e}"),
        }
        println!();
        for (n, val) in &result.variables {
            println!("  {n:<6} = {}", eng(*val));
        }
        println!();
    }
    Ok(())
}
