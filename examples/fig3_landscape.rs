//! Fig. 3 regeneration: the complexity / prediction-error /
//! first-time-effort landscape.
//!
//! Combines (a) the literature coordinates the paper plots for prior
//! tools, (b) a *measured* equation-based baseline point (square-law
//! Simple OTA design verified against the BSIM-deck simulator), and
//! (c) *measured* ASTRX/OBLX points (synthesis + verification, with
//! effort = description lines as entry time + CPU time).
//!
//! ```text
//! cargo run --release --example fig3_landscape
//! ```

use astrx_oblx::bench_suite;
use astrx_oblx::oblx::{synthesize, SynthesisOptions};
use astrx_oblx::report::TextTable;
use astrx_oblx::verify::{verify_design, verify_result};
use oblx_baselines::equation::{design_simple_ota, OtaSpec, SquareLawProcess};
use oblx_baselines::fig3::{astrx_effort_hours, fig3_points, MethodClass};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let moves: usize = std::env::var("OBLX_MOVES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(30_000);

    let mut t = TextTable::new(vec![
        "tool / method",
        "class",
        "complexity",
        "pred. error %",
        "effort (hours)",
        "origin",
    ]);

    // (a) Literature cluster positions.
    for p in fig3_points() {
        t.row(vec![
            p.tool.to_string(),
            p.class.label().to_string(),
            format!("{}", p.complexity),
            format!("{:.0}", p.error_pct),
            format!("{:.0}", p.effort_hours),
            "paper Fig. 3".to_string(),
        ]);
    }

    // (b) Measured equation-based baseline: square-law design checked
    // against the BSIM-deck simulator.
    let b = bench_suite::simple_ota();
    let compiled = astrx_oblx::astrx::compile(b.problem()?)?;
    let design = design_simple_ota(&OtaSpec::default(), &SquareLawProcess::default());
    let state = design.to_state(&compiled);
    if let Ok(v) = verify_design(&compiled, &state, &design.predicted) {
        t.row(vec![
            "square-law OTA design (this repo)".to_string(),
            MethodClass::SimplifiedEquation.label().to_string(),
            format!("{}", 12 + compiled.stats.user_vars),
            format!("{:.0}", 100.0 * v.worst_relative_error()),
            "40".to_string(), // textbook procedure: a week of derivation
            "measured".to_string(),
        ]);
    }

    // (c) Measured ASTRX/OBLX points.
    for b in [bench_suite::simple_ota(), bench_suite::two_stage()] {
        let compiled = astrx_oblx::astrx::compile(b.problem()?)?;
        let result = synthesize(
            &compiled,
            &SynthesisOptions {
                moves_budget: moves,
                seed: 1,
                ..SynthesisOptions::default()
            },
        )?;
        let devices = compiled.stats.bias_size.1 - compiled.stats.node_vars;
        let complexity = devices + compiled.stats.user_vars;
        match verify_result(&compiled, &result) {
            Ok(v) => {
                let lines = compiled.stats.netlist_lines + compiled.stats.synthesis_lines;
                // 5–10 overnight runs in the paper; scale our wall
                // clock by 8 runs.
                let cpu_hours = 8.0 * result.wall_seconds / 3600.0;
                t.row(vec![
                    format!("ASTRX/OBLX {} (this repo)", b.name),
                    MethodClass::AstrxOblx.label().to_string(),
                    format!("{complexity}"),
                    format!("{:.1}", 100.0 * v.worst_relative_error()),
                    format!("{:.1}", astrx_effort_hours(lines, cpu_hours)),
                    "measured".to_string(),
                ]);
            }
            Err(e) => eprintln!("{}: verification failed: {e}", b.name),
        }
    }

    println!("Fig. 3 — accuracy vs first-time design effort\n");
    println!("{}", t.render());
    println!(
        "The three clusters: derived-equation tools (accurate, months-to-years of\n\
         effort), simplified-equation tools (fast, ~100%+ error), and ASTRX/OBLX\n\
         (simulator-grade accuracy with hours of total first-time effort)."
    );
    Ok(())
}
