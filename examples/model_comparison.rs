//! The §VI model experiment: synthesize the same circuit (Simple OTA)
//! with the same specifications against three model/process
//! combinations — BSIM/2µ, BSIM/1.2µ, MOS3/1.2µ — minimizing active
//! area.
//!
//! The paper's finding: the 2µ design is largest, and the *two designs
//! for the same 1.2µ process* still differ substantially in area
//! because the device model changes the predicted currents. "Clearly
//! the choice of device model greatly affects circuit performance
//! prediction accuracy."
//!
//! ```text
//! cargo run --release --example model_comparison
//! ```

use astrx_oblx::bench_suite;
use astrx_oblx::oblx::{synthesize, SynthesisOptions};
use astrx_oblx::report::{eng, TextTable};
use astrx_oblx::verify::verify_result;
use oblx_devices::process::ProcessDeck;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let moves: usize = std::env::var("OBLX_MOVES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(40_000);
    let b = bench_suite::simple_ota();
    let decks = [
        ProcessDeck::C2Bsim,
        ProcessDeck::C12Bsim,
        ProcessDeck::C12Level3,
    ];
    // Paper areas for the same experiment: 580 µm², 300 µm², 140 µm².
    let paper_area = [580e-12, 300e-12, 140e-12];

    let mut t = TextTable::new(vec![
        "model/process",
        "area (m^2)",
        "paper area",
        "pred err %",
        "cost",
    ]);
    let mut areas = Vec::new();
    for (deck, paper) in decks.iter().zip(paper_area.iter()) {
        let compiled = astrx_oblx::astrx::compile(b.problem_with_deck(*deck)?)?;
        // Best of three seeds (the paper's overnight multi-run protocol).
        let mut best: Option<(f64, astrx_oblx::oblx::SynthesisResult)> = None;
        for seed in [9, 10, 11] {
            let r = synthesize(
                &compiled,
                &SynthesisOptions {
                    moves_budget: moves,
                    seed,
                    ..SynthesisOptions::default()
                },
            )?;
            let score = astrx_oblx::oblx::fixed_cost(&compiled, &r.state);
            if best.as_ref().is_none_or(|(s, _)| score < *s) {
                best = Some((score, r));
            }
        }
        let (_, result) = best.expect("seed ran");
        let (area, err) = match verify_result(&compiled, &result) {
            Ok(v) => (v.area, 100.0 * v.worst_relative_error()),
            Err(_) => (f64::NAN, f64::NAN),
        };
        areas.push(area);
        t.row(vec![
            deck.label().to_string(),
            eng(area),
            eng(*paper),
            format!("{err:.2}"),
            format!("{:.3}", result.best_cost),
        ]);
    }
    println!("§VI model experiment — Simple OTA, same specs, three decks ({moves} moves each)\n");
    println!("{}", t.render());
    if areas.len() == 3 && areas.iter().all(|a| a.is_finite()) {
        println!(
            "area ratio BSIM/1.2u : MOS3/1.2u = {:.2} (paper: {:.2})",
            areas[1] / areas[2],
            300.0 / 140.0
        );
        println!(
            "Same process, different model, different circuit — the reason\n\
             encapsulated simulator-grade models are non-negotiable for synthesis."
        );
    }
    Ok(())
}
