//! Yield analysis (the paper's closing future-work item): Monte-Carlo
//! threshold-mismatch sweep over a synthesized Simple OTA.
//!
//! The paper notes the Table 3 manual designer "was willing to trade
//! nominal performance for better estimated yield", and names adding
//! that ability ASTRX/OBLX's highest priority. This example shows the
//! mechanism: parametric yield versus the Pelgrom mismatch coefficient,
//! with the failure budget broken down per specification.
//!
//! ```text
//! OBLX_MOVES=40000 cargo run --release --example yield_analysis
//! ```

use astrx_oblx::bench_suite;
use astrx_oblx::oblx::{synthesize, SynthesisOptions};
use astrx_oblx::report::TextTable;
use astrx_oblx::yield_mc::{yield_mc, YieldOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let moves: usize = std::env::var("OBLX_MOVES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(30_000);
    let samples: usize = std::env::var("OBLX_MC_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(60);

    let b = bench_suite::simple_ota();
    let compiled = astrx_oblx::astrx::compile(b.problem()?)?;
    println!("Synthesizing {} ({moves} moves)…", b.name);
    let result = synthesize(
        &compiled,
        &SynthesisOptions {
            moves_budget: moves,
            seed: 1,
            ..SynthesisOptions::default()
        },
    )?;
    println!(
        "nominal cost {:.3}, kcl {:.2e} A\n",
        result.best_cost, result.kcl_max
    );

    let mut t = TextTable::new(vec![
        "A_vt (mV*um)",
        "yield %",
        "bias fails",
        "worst constraint",
    ]);
    for a_vt_mvum in [0.0, 10.0, 25.0, 50.0, 100.0] {
        let r = yield_mc(
            &compiled,
            &result.state,
            &YieldOptions {
                samples,
                a_vt: a_vt_mvum * 1e-9, // mV·µm → V·m
                seed: 7,
                slack: 0.05,
            },
        )?;
        let worst = r
            .failures_by_goal
            .iter()
            .max_by_key(|(_, n)| *n)
            .filter(|(_, n)| *n > 0)
            .map(|(g, n)| format!("{g} ({n}/{samples})"))
            .unwrap_or_else(|| "-".to_string());
        t.row(vec![
            format!("{a_vt_mvum:.0}"),
            format!("{:.1}", 100.0 * r.yield_fraction()),
            format!("{}", r.bias_failures),
            worst,
        ]);
    }
    println!(
        "Monte-Carlo mismatch yield, {samples} samples per point\n\n{}",
        t.render()
    );
    println!(
        "A nominal-optimal design rides its constraint boundaries, so yield\n\
         falls quickly with mismatch — the quantitative version of the paper's\n\
         closing observation, and the motivation for corner-aware synthesis."
    );
    Ok(())
}
