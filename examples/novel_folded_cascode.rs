//! Table 3 regeneration: automatic re-synthesis of the novel folded
//! cascode (Nakamura–Carley-style positive-feedback loads), the
//! paper's "the performance equations cannot be looked up in a
//! textbook" stress test.
//!
//! The specs are floored at the manual design's numbers (as in
//! Table 3); GBW is maximized and area minimized.
//!
//! ```text
//! OBLX_MOVES=120000 cargo run --release --example novel_folded_cascode
//! ```

use astrx_oblx::bench_suite;
use astrx_oblx::oblx::{synthesize, SynthesisOptions};
use astrx_oblx::report::{eng, pair, TextTable};
use astrx_oblx::verify::verify_result;

/// Manual-design column of Table 3 (paper values, for side-by-side).
const MANUAL: &[(&str, f64)] = &[
    ("adm", 71.2),     // dB
    ("gbw", 47.8e6),   // Hz
    ("pm", 77.4),      // degrees
    ("psrrvss", 92.6), // dB
    ("psrrvdd", 72.3), // dB
    ("swing", 2.8),    // V (paper reports ±1.4)
    ("sr", 76.8e6),    // V/s
    ("pwr", 9.0e-3),   // W
    ("area", 68.7e-9), // m²
];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let moves: usize = std::env::var("OBLX_MOVES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(80_000);
    let b = bench_suite::novel_folded_cascode();
    println!("{} — {}", b.name, b.description);
    let compiled = astrx_oblx::astrx::compile(b.problem()?)?;
    println!(
        "ASTRX: {} user vars + {} node vars, {} cost terms, {} C lines\n",
        compiled.stats.user_vars,
        compiled.stats.node_vars,
        compiled.stats.terms,
        compiled.stats.c_lines
    );

    let seeds: Vec<u64> = std::env::var("OBLX_SEEDS")
        .unwrap_or_else(|_| "1,2,3".to_string())
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect();
    let mut best: Option<(f64, astrx_oblx::oblx::SynthesisResult)> = None;
    for &seed in &seeds {
        let r = synthesize(
            &compiled,
            &SynthesisOptions {
                moves_budget: moves,
                seed,
                ..SynthesisOptions::default()
            },
        )?;
        let score = astrx_oblx::oblx::fixed_cost(&compiled, &r.state);
        if best.as_ref().is_none_or(|(s, _)| score < *s) {
            best = Some((score, r));
        }
    }
    let (_, result) = best.expect("at least one seed");
    println!(
        "OBLX: cost {:.3}, {} evals, {:.3} ms/eval, {:.1} s wall, kcl {:.2e} A\n",
        result.best_cost,
        result.evaluations,
        result.ms_per_eval,
        result.wall_seconds,
        result.kcl_max
    );

    let verified = verify_result(&compiled, &result)?;
    let mut t = TextTable::new(vec![
        "attribute",
        "manual design (paper)",
        "re-synthesis OBLX / sim",
    ]);
    for (name, p, s) in &verified.rows {
        let manual = MANUAL
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| eng(*v))
            .unwrap_or_default();
        t.row(vec![name.clone(), manual, pair(*p, *s)]);
    }
    println!("{}", t.render());
    println!(
        "worst prediction error {:.2}%",
        100.0 * verified.worst_relative_error()
    );
    println!("\nSynthesized variables:");
    for (n, v) in &result.variables {
        println!("  {n:<6} = {}", eng(*v));
    }
    Ok(())
}
