//! Table 1 regeneration: run ASTRX's analysis over the benchmark suite
//! and print the measured statistics next to the paper's.
//!
//! ```text
//! cargo run --release --example table1_analysis
//! ```

use astrx_oblx::bench_suite;
use astrx_oblx::report::TextTable;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut t = TextTable::new(vec![
        "circuit",
        "netlist lines (paper)",
        "synth lines (paper)",
        "user vars (paper)",
        "node vars (paper)",
        "terms (paper)",
        "C lines (paper)",
        "bias n/e (paper)",
        "awe n/e (paper)",
    ]);
    for b in bench_suite::all() {
        let compiled = astrx_oblx::astrx::compile(b.problem()?)?;
        let s = &compiled.stats;
        let p = &b.paper;
        let awe = s.awe_sizes.first().copied().unwrap_or((0, 0));
        t.row(vec![
            b.name.to_string(),
            format!("{} ({})", s.netlist_lines, p.netlist_lines),
            format!("{} ({})", s.synthesis_lines, p.synthesis_lines),
            format!("{} ({})", s.user_vars, p.user_vars),
            format!("{} ({})", s.node_vars, p.node_vars),
            format!("{} ({})", s.terms, p.terms),
            format!("{} ({})", s.c_lines, p.c_lines),
            format!(
                "{}/{} ({}/{})",
                s.bias_size.0, s.bias_size.1, p.bias.0, p.bias.1
            ),
            format!("{}/{} ({}/{})", awe.0, awe.1, p.awe.0, p.awe.1),
        ]);
    }
    println!("Table 1 — results of ASTRX's analyses (measured, paper in parens)\n");
    println!("{}", t.render());
    println!(
        "Shape checks: problem descriptions are tens of lines; added node-voltage\n\
         variables grow with circuit size and rival or exceed the user's; cost terms\n\
         and emitted C lines scale with complexity."
    );
    Ok(())
}
