//! Fig. 2 regeneration: the discrepancy from KCL-correct voltages
//! (the relaxed-dc error) decaying over the course of an annealing
//! run.
//!
//! Prints the worst KCL residual sampled along the optimization — the
//! paper's plot shows exactly this trace: large early (the annealer is
//! happily evaluating dc-*in*correct circuits), decaying to
//! simulator-grade tolerance by freeze-out.
//!
//! ```text
//! cargo run --release --example fig2_relaxed_dc
//! ```

use astrx_oblx::bench_suite;
use astrx_oblx::oblx::{synthesize, SynthesisOptions};
use astrx_oblx::report::TextTable;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let moves: usize = std::env::var("OBLX_MOVES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(30_000);
    let b = bench_suite::simple_ota();
    let compiled = astrx_oblx::astrx::compile(b.problem()?)?;
    let result = synthesize(
        &compiled,
        &SynthesisOptions {
            moves_budget: moves,
            seed: 5,
            trace_every: moves / 60,
            ..SynthesisOptions::default()
        },
    )?;

    let series = result
        .trace
        .series("kcl_max")
        .expect("kcl telemetry enabled");
    println!(
        "Fig. 2 — KCL discrepancy during optimization ({} moves, {}):\n",
        moves, b.name
    );
    let mut t = TextTable::new(vec!["move", "max |KCL| (A)", "log10", "bar"]);
    for (mv, kcl) in &series {
        let k = kcl.max(1e-15);
        let log = k.log10();
        // Bar from 1e-12 (right) to 1e-3 (left).
        let frac = ((log + 12.0) / 9.0).clamp(0.0, 1.0);
        let bar = "#".repeat((frac * 40.0) as usize);
        t.row(vec![
            format!("{mv}"),
            format!("{k:.3e}"),
            format!("{log:.1}"),
            bar,
        ]);
    }
    println!("{}", t.render());
    let first = series.first().map(|(_, k)| *k).unwrap_or(0.0);
    let last = series.last().map(|(_, k)| *k).unwrap_or(0.0);
    println!(
        "start {:.2e} A  →  end {:.2e} A   (final best state: {:.2e} A)",
        first, last, result.kcl_max
    );
    println!(
        "The annealer visits dc-incorrect circuits early — the imaginary\n\
         per-node correction current sources of paper §V.B — and drives them\n\
         to zero as the KCL penalty ramp dominates at freeze-out."
    );
    Ok(())
}
